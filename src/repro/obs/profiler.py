"""Cycle-attribution profiler for the simulation kernels.

A :class:`KernelProfiler` attached to :meth:`repro.sim.machine.Machine.run`
attributes two different clocks of one run:

**Simulated cycles.**  Every (core, cycle) slot between cycle 0 and the
final cycle is attributed exactly once: *busy* when the core's step made
pipeline progress that cycle, otherwise to a stall reason.  The kernels
call :meth:`note_gap`/:meth:`note_busy`/:meth:`note_stall` around each
core step; skipped stretches (the event kernel does not step frozen
cores) inherit the reason of the core's last no-progress step — a core
that reported no progress cannot change state until one of its wake
conditions fires, so the classification holds across the gap.  TRAQ-full
stalls are detected by the kernel itself from the dispatch-stall-counter
delta; every other no-progress step is classified by the read-only
:meth:`repro.cpu.core.Core.stall_reason`.  The attribution is exact:
``busy + sum(stalls) == final_cycle`` per core (asserted by
:meth:`unattributed_cycles`).

**Host wall time.**  The kernels time each component phase
(``bus.tick``, per-core ``step``, ``sampler.catch_up``) with
``perf_counter`` and the machine times the whole kernel call; whatever
the direct timers did not cover is attributed to ``kernel.scheduler``
(wake-queue and loop bookkeeping), so the host profile always covers
100% of kernel wall time with the directly-timed share reported as
``coverage``.

The bus additionally reports per-commit queueing delay beyond the fixed
arbitration latency (:meth:`note_bus_commit`) — the bus-contention signal.

Profilers are strictly read-only observers: attaching one must leave the
``RunResult`` byte-identical (the differential tests assert this), and a
``None`` profiler costs the kernels one identity check per step.
"""

from __future__ import annotations

__all__ = ["KernelProfiler", "render_profile", "profile_to_chrome"]

#: Display order for the stall-reason table; unknown reasons sort after.
STALL_REASON_ORDER = (
    "traq_full", "mshr_full", "bus_wait", "mem_latency", "ordering",
    "exec_latency", "branch", "fence", "wb_full", "frontend", "drain",
    "pipeline", "done", "init",
)


class KernelProfiler:
    """Attributes simulated cycles and host time for one machine run."""

    def __init__(self):
        self.num_cores = 0
        self.final_cycle = 0
        self.visited_cycles = 0
        self.kernel_wall_s = 0.0
        # Simulated-cycle attribution (per core).
        self.busy_cycles: list[int] = []
        self.stall_cycles: list[dict[str, int]] = []
        self._last_step_cycle: list[int] = []
        self._last_reason: list[str] = []
        # Host-time attribution (seconds).
        self.host_tick_s = 0.0
        self.host_core_s: list[float] = []
        self.host_sampler_s = 0.0
        # Bus contention.
        self.bus_commits = 0
        self.bus_wait_cycles = 0
        self.bus_wait_by_kind: dict[str, int] = {}
        self.finished = False

    # ------------------------------------------------------------ lifecycle

    def begin_run(self, num_cores: int) -> None:
        """Size the per-core accumulators; called by ``Machine.run``."""
        self.num_cores = num_cores
        self.busy_cycles = [0] * num_cores
        self.stall_cycles = [{} for _ in range(num_cores)]
        self.host_core_s = [0.0] * num_cores
        self._last_step_cycle = [-1] * num_cores
        # Before its first step a core has made no progress yet; a leading
        # gap (impossible today: every core is stepped at cycle 0) would
        # count as scheduler-induced.
        self._last_reason = ["init"] * num_cores
        self.finished = False

    def finish(self, final_cycle: int, kernel_wall_s: float) -> None:
        """Close the run: back-fill trailing gaps up to ``final_cycle``."""
        self.final_cycle = final_cycle
        self.kernel_wall_s = kernel_wall_s
        for core_id in range(self.num_cores):
            gap = final_cycle - self._last_step_cycle[core_id] - 1
            if gap > 0:
                self._stall(core_id, self._last_reason[core_id], gap)
        self.finished = True

    # ------------------------------------------------------- kernel hooks

    def note_gap(self, core_id: int, cycle: int) -> None:
        """Attribute the cycles since the core's last step (it was skipped
        while frozen) to its last stall reason; call before stepping."""
        gap = cycle - self._last_step_cycle[core_id] - 1
        if gap > 0:
            self._stall(core_id, self._last_reason[core_id], gap)

    def note_busy(self, core_id: int, cycle: int) -> None:
        """The step at ``cycle`` made progress."""
        self._last_step_cycle[core_id] = cycle
        self.busy_cycles[core_id] += 1
        self._last_reason[core_id] = "init"

    def note_stall(self, core_id: int, cycle: int, reason: str) -> None:
        """The step at ``cycle`` made no progress, for ``reason``."""
        self._last_step_cycle[core_id] = cycle
        self._last_reason[core_id] = reason
        self._stall(core_id, reason, 1)

    def note_bus_commit(self, kind: str, queue_wait: int) -> None:
        """One bus commit waited ``queue_wait`` cycles beyond arbitration."""
        self.bus_commits += 1
        self.bus_wait_cycles += queue_wait
        self.bus_wait_by_kind[kind] = (
            self.bus_wait_by_kind.get(kind, 0) + queue_wait)

    def _stall(self, core_id: int, reason: str, cycles: int) -> None:
        bucket = self.stall_cycles[core_id]
        bucket[reason] = bucket.get(reason, 0) + cycles

    # -------------------------------------------------------------- views

    def total_stalls(self) -> dict[str, int]:
        """Stall cycles by reason, summed over cores."""
        out: dict[str, int] = {}
        for bucket in self.stall_cycles:
            for reason, cycles in bucket.items():
                out[reason] = out.get(reason, 0) + cycles
        return out

    def unattributed_cycles(self) -> list[int]:
        """Per-core ``final_cycle - busy - stalls`` (0 when exact)."""
        return [self.final_cycle - self.busy_cycles[core_id]
                - sum(self.stall_cycles[core_id].values())
                for core_id in range(self.num_cores)]

    def host_components(self) -> dict[str, float]:
        """Host seconds per component; ``kernel.scheduler`` is the
        residual, so the values always sum to ``kernel_wall_s``."""
        timed = (self.host_tick_s + sum(self.host_core_s)
                 + self.host_sampler_s)
        return {
            "bus.tick": self.host_tick_s,
            "cores.step": sum(self.host_core_s),
            "sampler.catch_up": self.host_sampler_s,
            "kernel.scheduler": max(0.0, self.kernel_wall_s - timed),
        }

    def host_coverage(self) -> float:
        """Directly-timed fraction of kernel wall time (0..1)."""
        if not self.kernel_wall_s:
            return 0.0
        timed = (self.host_tick_s + sum(self.host_core_s)
                 + self.host_sampler_s)
        return min(1.0, timed / self.kernel_wall_s)

    def profile(self) -> dict:
        """The hierarchical profile as one JSON-able dict."""
        total_slots = self.final_cycle * self.num_cores
        stalls = self.total_stalls()
        return {
            "schema": 1,
            "num_cores": self.num_cores,
            "cycles": self.final_cycle,
            "visited_cycles": self.visited_cycles,
            "sim": {
                "busy_cycles": list(self.busy_cycles),
                "stall_by_reason": dict(sorted(stalls.items())),
                "stall_per_core": [dict(sorted(bucket.items()))
                                   for bucket in self.stall_cycles],
                "total_busy_cycles": sum(self.busy_cycles),
                "total_stall_cycles": sum(stalls.values()),
                "total_core_cycles": total_slots,
                "unattributed_cycles": self.unattributed_cycles(),
            },
            "host": {
                "kernel_wall_s": self.kernel_wall_s,
                "components": self.host_components(),
                "per_core_step_s": list(self.host_core_s),
                "coverage": self.host_coverage(),
            },
            "bus": {
                "commits": self.bus_commits,
                "queue_wait_cycles": self.bus_wait_cycles,
                "queue_wait_by_kind": dict(sorted(
                    self.bus_wait_by_kind.items())),
            },
        }


def _reason_sort_key(reason: str) -> tuple[int, str]:
    try:
        return (STALL_REASON_ORDER.index(reason), reason)
    except ValueError:
        return (len(STALL_REASON_ORDER), reason)


def render_profile(profile: dict) -> str:
    """Human-readable table form of :meth:`KernelProfiler.profile`."""
    lines: list[str] = []
    sim = profile["sim"]
    total = max(1, sim["total_core_cycles"])
    lines.append(f"cycle attribution "
                 f"({profile['num_cores']} cores x "
                 f"{profile['cycles']} cycles = {total} core-cycles)")
    rows = [("busy", sim["total_busy_cycles"])]
    rows.extend(sorted(sim["stall_by_reason"].items(),
                       key=lambda item: _reason_sort_key(item[0])))
    width = max(len("unattributed"), *(len(name) for name, _ in rows))
    for name, cycles in rows:
        lines.append(f"  {name:<{width}}  {cycles:>12}  "
                     f"{100.0 * cycles / total:6.2f}%")
    unattributed = sum(sim["unattributed_cycles"])
    lines.append(f"  {'unattributed':<{width}}  {unattributed:>12}  "
                 f"{100.0 * unattributed / total:6.2f}%")

    host = profile["host"]
    wall = max(1e-12, host["kernel_wall_s"])
    lines.append(f"host time (kernel wall {wall:.3f}s, "
                 f"direct coverage {100.0 * host['coverage']:.1f}%)")
    components = host["components"]
    width = max(len(name) for name in components)
    for name, seconds in components.items():
        lines.append(f"  {name:<{width}}  {seconds:>9.3f}s  "
                     f"{100.0 * seconds / wall:6.2f}%")

    bus = profile["bus"]
    commits = max(1, bus["commits"])
    lines.append(f"bus contention ({bus['commits']} commits, "
                 f"avg queue wait "
                 f"{bus['queue_wait_cycles'] / commits:.2f} cycles)")
    for kind, wait in bus["queue_wait_by_kind"].items():
        lines.append(f"  {kind:<8}  {wait:>10} wait cycles")
    return "\n".join(lines) + "\n"


def profile_to_chrome(profile: dict) -> list[dict]:
    """Chrome trace-event (Perfetto) rendering of a profile.

    Each core gets a track whose complete events lay the busy slice and
    the stall slices end to end (proportional bars, not a timeline); host
    components get one track in microseconds.
    """
    records: list[dict] = []
    pid = 1
    for core_id in range(profile["num_cores"]):
        records.append({"ph": "M", "name": "thread_name", "pid": pid,
                        "tid": core_id,
                        "args": {"name": f"core{core_id} cycles"}})
        cursor = 0
        slices = [("busy", profile["sim"]["busy_cycles"][core_id])]
        per_core = profile["sim"]["stall_per_core"][core_id]
        slices.extend(sorted(per_core.items(),
                             key=lambda item: _reason_sort_key(item[0])))
        for name, cycles in slices:
            if cycles <= 0:
                continue
            records.append({"ph": "X", "name": name, "pid": pid,
                            "tid": core_id, "ts": cursor, "dur": cycles,
                            "cat": "sim"})
            cursor += cycles
    host_tid = 1000
    records.append({"ph": "M", "name": "thread_name", "pid": pid,
                    "tid": host_tid, "args": {"name": "host (us)"}})
    cursor = 0
    for name, seconds in profile["host"]["components"].items():
        duration = seconds * 1e6
        if duration <= 0:
            continue
        records.append({"ph": "X", "name": name, "pid": pid,
                        "tid": host_tid, "ts": cursor,
                        "dur": duration, "cat": "host"})
        cursor += duration
    return records
