"""Structured key=value logging shared by the repro CLIs.

Every operational line the harness and the tools emit — sweep progress,
shard completions, heartbeats, bench history appends — goes through one
``repro``-rooted :mod:`logging` hierarchy with a key=value line format::

    ts=2026-08-08T12:00:01 level=info logger=repro.harness.sweep \
event=sweep.shard shard="fft x8 RC" source=run wall=1.2s done=3 total=8

Libraries call :func:`get_logger` and emit with :func:`log_kv`; only the
CLI entry points call :func:`setup_logging` (picking the level from a
shared ``--log-level`` flag, see :func:`add_log_level_argument`), so
importing repro never configures global logging state and test runs stay
silent unless they opt in.
"""

from __future__ import annotations

import argparse
import logging
import time

__all__ = ["LOG_LEVELS", "ROOT_LOGGER", "add_log_level_argument",
           "get_logger", "kv_line", "log_kv", "setup_logging"]

#: Name of the root of the repro logging hierarchy.
ROOT_LOGGER = "repro"

#: CLI-selectable levels (``--log-level`` choices), mildest last.
LOG_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

#: Marker attribute identifying handlers installed by :func:`setup_logging`
#: so repeated setup calls (tests, nested CLIs) replace instead of stack.
_HANDLER_MARK = "_repro_structured_handler"


def get_logger(name: str = "") -> logging.Logger:
    """The repro-hierarchy logger for a dotted component ``name``."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


def _format_value(value) -> str:
    """Render one key=value payload value: floats compact, strings quoted
    when they contain whitespace or ``=`` (so lines stay splittable)."""
    if isinstance(value, float):
        text = f"{value:.4g}"
    else:
        text = str(value)
    if any(ch in text for ch in ' \t="'):
        escaped = text.replace('"', '\\"')
        return f'"{escaped}"'
    return text


def kv_line(event: str, **fields) -> str:
    """One structured line: ``event=<event> key=value ...``.

    Field order is the caller's keyword order — put the identifying keys
    (shard, workload) first so the lines scan well.
    """
    parts = [f"event={_format_value(event)}"]
    parts.extend(f"{key}={_format_value(value)}"
                 for key, value in fields.items())
    return " ".join(parts)


def log_kv(logger: logging.Logger, level: int, event: str, **fields) -> None:
    """Emit :func:`kv_line` through ``logger`` at ``level``."""
    if logger.isEnabledFor(level):
        logger.log(level, kv_line(event, **fields))


class _StructuredFormatter(logging.Formatter):
    """``ts=... level=... logger=... <message>`` — the message itself is
    already key=value when it came through :func:`log_kv`."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%Y-%m-%dT%H:%M:%S",
                              time.localtime(record.created))
        return (f"ts={stamp} level={record.levelname.lower()} "
                f"logger={record.name} {record.getMessage()}")


def setup_logging(level: str = "info", stream=None) -> logging.Logger:
    """Install the structured stderr handler on the ``repro`` logger.

    Idempotent: a previously installed structured handler is replaced, so
    calling a CLI ``main()`` repeatedly (tests do) never duplicates lines.
    Returns the configured root logger.
    """
    if level not in LOG_LEVELS:
        raise ValueError(f"unknown log level {level!r}; "
                         f"expected one of {sorted(LOG_LEVELS)}")
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(LOG_LEVELS[level])
    logger.propagate = False
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(_StructuredFormatter())
    setattr(handler, _HANDLER_MARK, True)
    logger.addHandler(handler)
    return logger


def add_log_level_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--log-level`` CLI flag (harness and tools)."""
    parser.add_argument("--log-level", default="info",
                        choices=sorted(LOG_LEVELS),
                        help="structured-logging verbosity (default: info)")
