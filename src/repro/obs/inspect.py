"""Time-travel replay inspection: checkpoints + reverse-debugging queries.

Deterministic replay makes a recording a *queryable database of machine
states*: any point of the execution can be reconstructed by replaying up
to it.  Doing that from cycle zero for every question is wasteful, so
:class:`CheckpointStore` snapshots the full replay state — memory image,
per-core :class:`~repro.replay.interpreter.ThreadContext`\\ s (captured via
:mod:`repro.sim.serialize`), CISN watermarks and replay counters — every N
committed chunks, and queries restore the nearest checkpoint and replay
forward.  Restore-and-run-forward is observationally invisible: the
differential suite proves byte-identical final memory, registers and
counts against straight-line replay.

:class:`ReplayInspector` is the query engine the ``repro.tools inspect``
CLI and the divergence forensics ride on:

* ``state_at(core, cisn)`` — the whole-machine state right after a chunk
  committed (registers, PCs, memory, watermarks);
* ``first_write(addr)`` / ``last_write(addr)`` — write attribution from
  the replay-order access log;
* ``who_read(addr, value=None)`` — every read of an address (optionally
  filtered to the reads that observed one value);
* ``timeline(core)`` — the per-chunk interval timeline of one core;
* ``hb_slice(core, cisn)`` — the chunk's happens-before causal cone
  (:mod:`repro.obs.causality`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..replay.costmodel import ReplayCounts
from ..replay.replayer import ReplayState, Replayer, _WriterTrackingMemory
from ..sim.serialize import thread_context_from_dict, thread_context_to_dict
from .causality import CausalityGraph, HBSlice

__all__ = [
    "DEFAULT_CHECKPOINT_EVERY",
    "READ_KINDS",
    "WRITE_KINDS",
    "ReplayCheckpoint",
    "CheckpointStore",
    "MemoryAccess",
    "AccessLog",
    "StateView",
    "ReplayInspector",
]

#: Snapshot cadence (committed chunks) when the caller does not choose one.
DEFAULT_CHECKPOINT_EVERY = 8

#: Access-log kinds that mutate memory.
WRITE_KINDS = frozenset({"store", "rmw-store", "patched-store"})
#: Access-log kinds that observe memory (injected loads replay the
#: recorded value; their address is recomputed deterministically).
READ_KINDS = frozenset({"load", "rmw-load", "injected-load"})


# ------------------------------------------------------------ checkpoints

@dataclass
class ReplayCheckpoint:
    """A full replay-state snapshot taken after ``position`` chunks."""

    checkpoint_id: int
    position: int                       # committed intervals at capture
    cisn_watermarks: list[int]          # per core: next CISN to commit
    memory: dict[int, int]
    writers: dict[int, tuple[int, int]]  # addr -> (core, cisn) last writer
    contexts: list[dict]                # serialized ThreadContexts
    counts: ReplayCounts

    def to_dict(self) -> dict:
        """JSON-able form (rides on :mod:`repro.sim.serialize` idioms)."""
        from dataclasses import asdict

        return {
            "checkpoint_id": self.checkpoint_id,
            "position": self.position,
            "cisn_watermarks": list(self.cisn_watermarks),
            "memory": {str(addr): value
                       for addr, value in self.memory.items()},
            "writers": {str(addr): [core, cisn]
                        for addr, (core, cisn) in self.writers.items()},
            "contexts": [dict(context) for context in self.contexts],
            "counts": asdict(self.counts),
        }

    @staticmethod
    def from_dict(data: dict) -> "ReplayCheckpoint":
        return ReplayCheckpoint(
            checkpoint_id=data["checkpoint_id"],
            position=data["position"],
            cisn_watermarks=list(data["cisn_watermarks"]),
            memory={int(addr): value
                    for addr, value in data["memory"].items()},
            writers={int(addr): (core, cisn)
                     for addr, (core, cisn) in data["writers"].items()},
            contexts=[dict(context) for context in data["contexts"]],
            counts=ReplayCounts(**data["counts"]),
        )


class CheckpointStore:
    """Ordered collection of replay checkpoints with nearest-lookup."""

    def __init__(self):
        self.checkpoints: list[ReplayCheckpoint] = []

    def __len__(self) -> int:
        return len(self.checkpoints)

    def capture(self, replayer: Replayer,
                state: ReplayState) -> ReplayCheckpoint:
        """Snapshot ``state`` (deep copies; the live replay keeps going)."""
        checkpoint = ReplayCheckpoint(
            checkpoint_id=len(self.checkpoints),
            position=state.position,
            cisn_watermarks=list(state.cisn_watermarks),
            memory=dict(state.memory),
            writers=dict(state.memory.writers),
            contexts=[thread_context_to_dict(context)
                      for context in state.contexts],
            counts=replace(state.counts),
        )
        self.checkpoints.append(checkpoint)
        return checkpoint

    def nearest(self, position: int) -> ReplayCheckpoint | None:
        """Latest checkpoint at or before ``position`` (None if empty)."""
        candidates = [checkpoint for checkpoint in self.checkpoints
                      if checkpoint.position <= position]
        if not candidates:
            return None
        return max(candidates,
                   key=lambda cp: (cp.position, cp.checkpoint_id))

    def restore(self, checkpoint: ReplayCheckpoint,
                replayer: Replayer) -> ReplayState:
        """Rebuild a live :class:`ReplayState` from a snapshot."""
        memory = _WriterTrackingMemory(checkpoint.memory)
        memory.writers = dict(checkpoint.writers)
        contexts = [thread_context_from_dict(data, replayer.program)
                    for data in checkpoint.contexts]
        return ReplayState(
            memory=memory, contexts=contexts,
            counts=replace(checkpoint.counts),
            position=checkpoint.position,
            cisn_watermarks=list(checkpoint.cisn_watermarks))


# ------------------------------------------------------------- access log

@dataclass(frozen=True)
class MemoryAccess:
    """One replayed memory access, attributed to its chunk."""

    step: int          # global replay-order ordinal
    position: int      # interval index in the QuickRec order
    core_id: int
    cisn: int
    kind: str          # load | store | rmw-load | rmw-store |
    #                    injected-load | patched-store
    addr: int
    value: int

    @property
    def is_write(self) -> bool:
        return self.kind in WRITE_KINDS

    def to_dict(self) -> dict:
        return {"step": self.step, "position": self.position,
                "core": self.core_id, "cisn": self.cisn, "kind": self.kind,
                "addr": self.addr, "value": self.value}

    def render(self) -> str:
        return (f"step {self.step}: core {self.core_id} chunk {self.cisn} "
                f"{self.kind} {self.addr:#x} = {self.value:#x}")


class AccessLog:
    """Replay-order log of every memory access, indexed by address.

    Plugs into :meth:`Replayer.run` as the ``access_sink``.
    """

    def __init__(self):
        self.accesses: list[MemoryAccess] = []
        self._by_addr: dict[int, list[MemoryAccess]] = {}
        self._position = -1
        self._core = -1
        self._cisn = -1

    def __len__(self) -> int:
        return len(self.accesses)

    # Replayer sink protocol -------------------------------------------

    def begin_interval(self, position: int, interval) -> None:
        self._position = position
        self._core = interval.core_id
        self._cisn = interval.cisn

    def access(self, kind: str, addr: int, value: int) -> None:
        record = MemoryAccess(step=len(self.accesses),
                              position=self._position, core_id=self._core,
                              cisn=self._cisn, kind=kind, addr=addr,
                              value=value)
        self.accesses.append(record)
        self._by_addr.setdefault(addr, []).append(record)

    # Queries ------------------------------------------------------------

    def writes_to(self, addr: int) -> list[MemoryAccess]:
        return [access for access in self._by_addr.get(addr, ())
                if access.kind in WRITE_KINDS]

    def reads_of(self, addr: int,
                 value: int | None = None) -> list[MemoryAccess]:
        return [access for access in self._by_addr.get(addr, ())
                if access.kind in READ_KINDS
                and (value is None or access.value == value)]

    def first_write(self, addr: int) -> MemoryAccess | None:
        writes = self.writes_to(addr)
        return writes[0] if writes else None

    def last_write(self, addr: int) -> MemoryAccess | None:
        writes = self.writes_to(addr)
        return writes[-1] if writes else None

    def touched_addresses(self) -> list[int]:
        return sorted(self._by_addr)


# ------------------------------------------------------------ state views

@dataclass
class StateView:
    """The whole-machine replay state at one position."""

    position: int
    cisn_watermarks: list[int]
    memory: dict[int, int]              # nonzero words only
    cores: list[dict]                   # serialized ThreadContexts
    counts: ReplayCounts
    checkpoint_id: int
    replayed_forward: int               # chunks replayed past the checkpoint

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return {
            "position": self.position,
            "cisn_watermarks": list(self.cisn_watermarks),
            "memory": {str(addr): value
                       for addr, value in sorted(self.memory.items())},
            "cores": [dict(core) for core in self.cores],
            "counts": asdict(self.counts),
            "checkpoint_id": self.checkpoint_id,
            "replayed_forward": self.replayed_forward,
        }

    def render(self) -> str:
        lines = [f"state after {self.position} committed chunk(s) "
                 f"(checkpoint #{self.checkpoint_id} + "
                 f"{self.replayed_forward} replayed forward)",
                 "  cisn watermarks: "
                 + " ".join(f"core{core}={cisn}" for core, cisn
                            in enumerate(self.cisn_watermarks))]
        for core in self.cores:
            touched = {index: value for index, value
                       in enumerate(core["regs"]) if value}
            regs = " ".join(f"r{index}={value:#x}"
                            for index, value in sorted(touched.items()))
            lines.append(
                f"  core {core['core_id']}: pc={core['pc']} "
                f"retired={core['instructions_executed']}"
                + (" halted" if core["halted"] else "")
                + (f" {regs}" if regs else ""))
        lines.append(f"  memory ({len(self.memory)} nonzero words):")
        for addr, value in sorted(self.memory.items()):
            lines.append(f"    {addr:#08x} = {value:#x}")
        return "\n".join(lines)


# ---------------------------------------------------------- the inspector

class ReplayInspector:
    """Reverse-debugging query engine over one recorded variant.

    Construction replays the recording once end to end, capturing
    checkpoints every ``checkpoint_every`` chunks and indexing every
    memory access; queries then cost one nearest-checkpoint restore plus
    a bounded forward replay.
    """

    def __init__(self, program, per_core_entries: list[list], *,
                 cisn_bits: int = 16, variant: str = "default",
                 edges=None,
                 checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                 recording_cycles: int | None = None):
        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        self.variant = variant
        self.recording_cycles = recording_cycles
        self.checkpoint_every = checkpoint_every
        self.replayer = Replayer(program, per_core_entries,
                                 cisn_bits=cisn_bits, variant=variant)
        self.checkpoints = CheckpointStore()
        self.accesses = AccessLog()
        memory, contexts, counts = self.replayer.replay(
            checkpoint_every=checkpoint_every,
            checkpoint_sink=self.checkpoints.capture,
            access_sink=self.accesses)
        self.final_memory = {addr: value for addr, value in memory.items()
                             if value}
        self.final_writers = dict(memory.writers)
        self.final_counts = counts
        self.graph = CausalityGraph.build(
            self.replayer.intervals_per_core(), edges=edges,
            order=self.replayer.quickrec_order())
        self.replayer.checkpoint_store = self.checkpoints
        self.replayer.hb_graph = self.graph

    # Constructors -------------------------------------------------------

    @classmethod
    def from_run_result(cls, result, variant: str = "default", *,
                        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
                        ) -> "ReplayInspector":
        """Inspector over a live or deserialized
        :class:`~repro.sim.machine.RunResult`."""
        outputs = result.recordings[variant]
        return cls(result.program,
                   [output.entries for output in outputs],
                   cisn_bits=outputs[0].config.cisn_bits, variant=variant,
                   edges=result.dependence_edges.get(variant),
                   checkpoint_every=checkpoint_every,
                   recording_cycles=result.cycles)

    @classmethod
    def from_stored(cls, stored, variant: str | None = None, *,
                    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
                    ) -> "ReplayInspector":
        """Inspector over a :class:`~repro.storage.StoredRecording`."""
        from ..common.config import RecorderConfig
        from ..storage import config_from_dict

        variant = variant or stored.variants[0]
        entries = stored.log_entries(variant)  # nice error on bad variant
        meta = stored.manifest["variants"][variant]
        recorder_config = config_from_dict(RecorderConfig,
                                           meta["recorder_config"])
        return cls(stored.program, entries,
                   cisn_bits=recorder_config.cisn_bits, variant=variant,
                   edges=stored.edges(variant),
                   checkpoint_every=checkpoint_every,
                   recording_cycles=stored.cycles)

    # State queries ------------------------------------------------------

    @property
    def num_intervals(self) -> int:
        return len(self.replayer.intervals)

    def _position_of(self, core_id: int, cisn: int) -> int:
        position = self.replayer.index_of(core_id, cisn)
        if position is None:
            raise KeyError(f"no chunk (core {core_id}, cisn {cisn}) in "
                           f"variant {self.variant!r}")
        return position

    def state_at(self, core_id: int, cisn: int) -> StateView:
        """Machine state right after core ``core_id`` committed chunk
        ``cisn`` (resolves the nearest checkpoint, replays forward)."""
        return self.state_at_position(self._position_of(core_id, cisn) + 1)

    def state_at_position(self, position: int) -> StateView:
        """Machine state after ``position`` chunks of the total order."""
        if not 0 <= position <= self.num_intervals:
            raise KeyError(f"position {position} outside "
                           f"0..{self.num_intervals}")
        checkpoint = self.checkpoints.nearest(position)
        state = self.checkpoints.restore(checkpoint, self.replayer)
        self.replayer.run(state, stop=position)
        return StateView(
            position=position,
            cisn_watermarks=list(state.cisn_watermarks),
            memory={addr: value for addr, value in state.memory.items()
                    if value},
            cores=[thread_context_to_dict(context)
                   for context in state.contexts],
            counts=replace(state.counts),
            checkpoint_id=checkpoint.checkpoint_id,
            replayed_forward=position - checkpoint.position)

    def checkpoint_at(self, core_id: int, cisn: int) -> ReplayCheckpoint:
        """On-demand checkpoint right after one chunk (cached for reuse)."""
        position = self._position_of(core_id, cisn) + 1
        nearest = self.checkpoints.nearest(position)
        if nearest is not None and nearest.position == position:
            return nearest
        state = self.checkpoints.restore(nearest, self.replayer)
        self.replayer.run(state, stop=position)
        return self.checkpoints.capture(self.replayer, state)

    # Data-flow queries --------------------------------------------------

    def first_write(self, addr: int) -> MemoryAccess | None:
        return self.accesses.first_write(addr)

    def last_write(self, addr: int) -> MemoryAccess | None:
        return self.accesses.last_write(addr)

    def writes_to(self, addr: int) -> list[MemoryAccess]:
        return self.accesses.writes_to(addr)

    def who_read(self, addr: int,
                 value: int | None = None) -> list[MemoryAccess]:
        return self.accesses.reads_of(addr, value)

    # Structure queries --------------------------------------------------

    def timeline(self, core_id: int) -> list[dict]:
        """Per-chunk interval timeline of one core (replay order)."""
        if not 0 <= core_id < self.replayer.program.num_threads:
            raise KeyError(f"core {core_id} out of range "
                           f"(program has "
                           f"{self.replayer.program.num_threads} threads)")
        from ..recorder.logfmt import Dummy, InorderBlock, ReorderedLoad
        from ..replay.patcher import PatchedWrite

        spans = []
        for position, interval in enumerate(self.replayer.intervals):
            if interval.core_id != core_id:
                continue
            bounds = self.replayer.interval_bounds(core_id, interval.cisn)
            instructions = injected = dummies = patched = 0
            for entry in interval.entries:
                if isinstance(entry, InorderBlock):
                    instructions += entry.size
                elif isinstance(entry, ReorderedLoad):
                    injected += 1
                elif isinstance(entry, Dummy):
                    dummies += 1
                elif isinstance(entry, PatchedWrite):
                    patched += 1
            spans.append({
                "cisn": interval.cisn,
                "position": position,
                "start": bounds[0] if bounds else 0,
                "end": bounds[1] if bounds else interval.timestamp,
                "instructions": instructions,
                "injected_loads": injected,
                "dummies": dummies,
                "patched_writes": patched,
            })
        return spans

    def hb_slice(self, core_id: int, cisn: int, *,
                 depth: int | None = None) -> HBSlice:
        """The chunk's happens-before causal cone."""
        return self.graph.slice((core_id, cisn), depth=depth)

    def summary(self) -> dict:
        """JSON-able overview of the inspected recording."""
        return {
            "variant": self.variant,
            "intervals": self.num_intervals,
            "intervals_per_core": self.replayer.intervals_per_core(),
            "checkpoints": len(self.checkpoints),
            "checkpoint_every": self.checkpoint_every,
            "accesses": len(self.accesses),
            "touched_addresses": len(self.accesses.touched_addresses()),
            "hb_source": self.graph.source,
            "hb_edges": self.graph.num_edges,
            "recording_cycles": self.recording_cycles,
        }
