"""Coverage-signal snapshots of recorded executions.

The adversarial fuzzer (:mod:`repro.fuzz`) steers program mutation toward
*rare recorder states*; this module defines what "recorder state" means:
a flat ``{signal_name: value}`` dict distilled from one
:class:`~repro.sim.machine.RunResult` — interval cut-reason mix (conflict
/ size-cap / eviction / pure-aliasing cuts), Opt rescue counts
(perform events moved across interval boundaries), reordered-access mix,
signature-bank occupancy at cut time, Snoop Table traffic, interval-length
shape and TRAQ occupancy percentiles.

The snapshot is computed from the result object alone (recorder stats +
per-core TRAQ histograms), so it works identically on live results and on
results deserialized from the sweep wire format — which is what lets fuzz
workers evaluate candidates out-of-process and ship the signals home.
Discretizing signals into novelty *buckets* is the fuzzer's job
(:mod:`repro.fuzz.coverage`); this layer only names and extracts them.
"""

from __future__ import annotations

__all__ = ["coverage_signals"]


def coverage_signals(result) -> dict[str, float]:
    """Flat coverage-signal snapshot of one recorded execution.

    Keys are ``<variant>.<signal>`` for per-recorder-variant signals plus
    a few machine-wide ``machine.*`` / ``traq.*`` signals.  Values are
    plain numbers; insertion order is deterministic (sorted variants).
    """
    signals: dict[str, float] = {}
    for variant in sorted(result.recordings):
        stats = result.recording_stats(variant)
        prefix = variant + "."
        frames = stats.frames
        signals[prefix + "cut.conflict"] = stats.conflict_terminations
        signals[prefix + "cut.size"] = stats.size_terminations
        signals[prefix + "cut.eviction"] = stats.eviction_terminations
        signals[prefix + "cut.alias"] = stats.signature_alias_terminations
        signals[prefix + "rescued"] = stats.moved_across_intervals
        signals[prefix + "reordered.loads"] = stats.reordered_loads
        signals[prefix + "reordered.stores"] = stats.reordered_stores
        signals[prefix + "reordered.rmws"] = stats.reordered_rmws
        signals[prefix + "frames"] = frames
        signals[prefix + "interval_instructions.mean"] = (
            stats.instructions_counted / frames if frames else 0.0)
        signals[prefix + "signature_set_bits.mean"] = (
            stats.signature_set_bits / frames if frames else 0.0)
        signals[prefix + "snoop_observed"] = stats.snoop_observed
        signals[prefix + "log_bits_per_ki"] = (
            stats.bits_per_kilo_instruction())

    ooo = result.ooo_fraction()
    signals["machine.ooo_fraction.total"] = ooo["total"]
    signals["machine.forwarded_loads"] = sum(
        core.forwarded_loads for core in result.cores)
    signals["traq.stall_cycles"] = sum(
        core.traq_stall_cycles for core in result.cores)
    signals["traq.occupancy.p95"] = max(
        (core.traq_histogram.percentile(95.0) for core in result.cores),
        default=0.0)
    signals["traq.occupancy.max"] = max(
        (core.traq_occupancy.maximum if core.traq_occupancy.count else 0.0
         for core in result.cores), default=0.0)
    return signals
