"""Typed trace-event records for the observability bus.

Every event the simulator can emit is a small frozen-ish dataclass with a
class-level :class:`Category`, a default :class:`Severity` and a stable
``name``.  Events carry the global cycle and the core they belong to
(``core_id = -1`` for machine-global sources such as the bus), plus
event-specific payload fields exposed through :meth:`TraceEvent.args` for
the exporters.

The design goal is *zero cost when disabled*: events are only constructed
behind an ``if tracer is not None`` guard at each hook point, so the
dataclasses here can afford to be descriptive rather than minimal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields

__all__ = [
    "Category",
    "Severity",
    "TraceEvent",
    "InstrPerformEvent",
    "InstrCountEvent",
    "CacheMissEvent",
    "CacheEvictEvent",
    "CoherenceEvent",
    "WriteBufferDrainEvent",
    "TraqEnqueueEvent",
    "TraqDequeueEvent",
    "ChunkCutEvent",
    "ReplayStepEvent",
    "CheckpointEvent",
    "DivergenceEvent",
]


class Category(enum.Enum):
    """Coarse event families, used for filtering and for exporter tracks."""

    CORE = "core"
    CACHE = "cache"
    COHERENCE = "coherence"
    WRITE_BUFFER = "wbuf"
    TRAQ = "traq"
    RECORDER = "recorder"
    REPLAY = "replay"


class Severity(enum.IntEnum):
    """Syslog-style severity; the tracer drops events below its floor."""

    DEBUG = 10
    INFO = 20
    WARNING = 30
    ERROR = 40


#: Identity of the machine-global bus track (events with no owning core).
BUS_TRACK = -1


@dataclass(slots=True)
class TraceEvent:
    """Base trace record: where (core), when (cycle), what (subclass)."""

    cycle: int
    core_id: int

    category: "Category" = Category.CORE  # overridden per subclass
    severity: "Severity" = Severity.DEBUG

    @property
    def name(self) -> str:
        return type(self).__name__.removesuffix("Event")

    def args(self) -> dict:
        """Event payload as a flat JSON-safe dict (exporter format)."""
        out = {}
        for f in fields(self):
            if f.name in ("cycle", "core_id", "category", "severity"):
                continue
            value = getattr(self, f.name)
            if isinstance(value, enum.Enum):
                value = value.value
            out[f.name] = value
        return out

    def track(self) -> str:
        """Display track key: one per core, plus bus and per-core TRAQ
        tracks (Perfetto renders each as its own thread row)."""
        if self.category is Category.COHERENCE:
            return "bus"
        if self.category is Category.TRAQ:
            return f"traq{self.core_id}"
        return f"core{self.core_id}"


def _event(category: Category, severity: Severity = Severity.DEBUG):
    """Decorator: a slotted dataclass pinned to a category/severity."""

    def wrap(cls):
        cls = dataclass(slots=True)(cls)
        original_init = cls.__init__

        def __init__(self, *args, **kwargs):  # noqa: N807
            kwargs.setdefault("category", category)
            kwargs.setdefault("severity", severity)
            original_init(self, *args, **kwargs)

        cls.__init__ = __init__
        return cls

    return wrap


@_event(Category.CORE)
class InstrPerformEvent(TraceEvent):
    """A memory access reached its coherence-order point."""

    seq: int = 0
    opcode: str = ""
    addr: int = 0
    out_of_order: bool = False


@_event(Category.CORE)
class InstrCountEvent(TraceEvent):
    """A TRAQ entry passed the in-order counting step."""

    seq: int = -1          # -1 for NMI filler groups
    nmi: int = 0
    opcode: str = "filler"


@_event(Category.CACHE)
class CacheMissEvent(TraceEvent):
    """An access missed (or lacked write permission) in the local L1."""

    line_addr: int = 0
    is_write: bool = False
    state: str = "I"


@_event(Category.CACHE)
class CacheEvictEvent(TraceEvent):
    """An owned line was victimized by an allocation."""

    line_addr: int = 0
    dirty: bool = False


@_event(Category.COHERENCE)
class CoherenceEvent(TraceEvent):
    """A coherence transaction committed on the bus (global track)."""

    requester: int = 0
    kind: str = ""
    line_addr: int = 0
    is_write: bool = False


@_event(Category.WRITE_BUFFER)
class WriteBufferDrainEvent(TraceEvent):
    """A retired store left the write buffer toward the memory system."""

    seq: int = 0
    addr: int = 0
    occupancy: int = 0


@_event(Category.TRAQ)
class TraqEnqueueEvent(TraceEvent):
    """A TRAQ slot was allocated at dispatch."""

    entry_id: int = 0
    is_filler: bool = False
    occupancy: int = 0


@_event(Category.TRAQ)
class TraqDequeueEvent(TraceEvent):
    """A TRAQ head entry was counted and released."""

    entry_id: int = 0
    occupancy: int = 0


@_event(Category.RECORDER, Severity.INFO)
class ChunkCutEvent(TraceEvent):
    """A recorder terminated an interval (chunk) and emitted its frame."""

    variant: str = ""
    cisn: int = 0
    reason: str = ""
    entries: int = 0
    instructions: int = 0


@_event(Category.REPLAY)
class ReplayStepEvent(TraceEvent):
    """The replayer finished one interval of one core."""

    variant: str = ""
    cisn: int = 0
    timestamp: int = 0
    instructions: int = 0
    injected_loads: int = 0
    patched_writes: int = 0


@_event(Category.REPLAY, Severity.INFO)
class CheckpointEvent(TraceEvent):
    """The replayer captured a restore-and-run-forward checkpoint."""

    variant: str = ""
    checkpoint_id: int = 0
    position: int = 0      # intervals committed when the snapshot was taken


@_event(Category.REPLAY, Severity.ERROR)
class DivergenceEvent(TraceEvent):
    """Replay verification observed a mismatch."""

    variant: str = ""
    kind: str = ""
    addr: int = -1
    expected: int = 0
    observed: int = 0
