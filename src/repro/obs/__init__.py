"""``repro.obs`` — the unified observability layer.

Three pillars, all zero-cost when disabled:

* **Trace bus** (:mod:`.tracer`, :mod:`.events`): a bounded ring buffer of
  typed event records emitted from hook points in the core, the caches,
  the coherence bus, the TRAQ, the recorder and the replayer, with
  category/severity filtering and exporters (:mod:`.exporters`) to JSONL
  and the Chrome trace-event format (Perfetto-loadable).
* **Metrics registry** (:mod:`.metrics`): named counters, gauges and
  distribution metrics collected into flat :class:`MetricsSnapshot`
  dicts with before/after ``diff`` support.
* **Divergence forensics** (:mod:`.forensics`): when replay verification
  fails, a :class:`DivergenceReport` names the culprit core, chunk and
  address and quotes the trace bus's recent history.

Sweep-scale additions (see ``docs/internals.md``):

* **Cross-process telemetry** (:mod:`.telemetry`): worker metrics and
  optional trace ring buffers shipped through the sweep wire format and
  merged deterministically by a :class:`TelemetryAggregator`, with
  :class:`SweepProgress` heartbeat/ETA lines.
* **Cycle-attribution profiler** (:mod:`.profiler`): a
  :class:`KernelProfiler` attributing simulated cycles (busy vs stall
  reasons) and host wall time (per-component) for one machine run.
* **Perf observatory** (:mod:`.perfdb`): append-only JSONL bench history
  with rolling-baseline regression detection.
* **Structured logging** (:mod:`.logging`): key=value log lines shared
  by the harness and tools CLIs.
* **Time-travel inspection** (:mod:`.inspect`, :mod:`.causality`): replay
  checkpoints every N chunks with restore-and-run-forward state queries
  (:class:`ReplayInspector`), and the happens-before
  :class:`CausalityGraph` over recorded chunks with ancestor/slice
  queries — the engine behind ``repro.tools inspect`` and the
  checkpoint/causal-cone fields of :class:`DivergenceReport`.
"""

from .causality import CausalityGraph, HBSlice
from .coverage import coverage_signals
from .events import (
    CacheEvictEvent,
    CacheMissEvent,
    Category,
    CheckpointEvent,
    ChunkCutEvent,
    CoherenceEvent,
    DivergenceEvent,
    InstrCountEvent,
    InstrPerformEvent,
    ReplayStepEvent,
    Severity,
    TraceEvent,
    TraqDequeueEvent,
    TraqEnqueueEvent,
    WriteBufferDrainEvent,
)
from .exporters import (
    chrome_trace_events,
    event_to_dict,
    export_chrome_trace,
    export_jsonl,
)
from .forensics import DivergenceReport, build_report, raise_divergence
from .inspect import (
    AccessLog,
    CheckpointStore,
    MemoryAccess,
    ReplayCheckpoint,
    ReplayInspector,
    StateView,
)
from .logging import (
    add_log_level_argument,
    get_logger,
    kv_line,
    log_kv,
    setup_logging,
)
from .metrics import (
    Counter,
    DistributionMetric,
    Gauge,
    MetricsRegistry,
    MetricsSnapshot,
)
from .perfdb import (
    PerfRecord,
    PerfReport,
    RegressionCheck,
    append_records,
    load_history,
    records_from_bench_report,
    regression_report,
)
from .profiler import KernelProfiler, profile_to_chrome, render_profile
from .telemetry import (
    ShardTelemetry,
    SweepProgress,
    TelemetryAggregator,
    TelemetryConfig,
)
from .tracer import Tracer

__all__ = [
    "Category",
    "Severity",
    "TraceEvent",
    "InstrPerformEvent",
    "InstrCountEvent",
    "CacheMissEvent",
    "CacheEvictEvent",
    "CoherenceEvent",
    "WriteBufferDrainEvent",
    "TraqEnqueueEvent",
    "TraqDequeueEvent",
    "ChunkCutEvent",
    "ReplayStepEvent",
    "CheckpointEvent",
    "DivergenceEvent",
    "Tracer",
    "Counter",
    "Gauge",
    "DistributionMetric",
    "MetricsRegistry",
    "MetricsSnapshot",
    "event_to_dict",
    "export_jsonl",
    "chrome_trace_events",
    "export_chrome_trace",
    "DivergenceReport",
    "build_report",
    "raise_divergence",
    "CausalityGraph",
    "HBSlice",
    "coverage_signals",
    "ReplayCheckpoint",
    "CheckpointStore",
    "MemoryAccess",
    "AccessLog",
    "StateView",
    "ReplayInspector",
    "TelemetryConfig",
    "TelemetryAggregator",
    "ShardTelemetry",
    "SweepProgress",
    "KernelProfiler",
    "render_profile",
    "profile_to_chrome",
    "PerfRecord",
    "RegressionCheck",
    "PerfReport",
    "append_records",
    "load_history",
    "records_from_bench_report",
    "regression_report",
    "setup_logging",
    "get_logger",
    "log_kv",
    "kv_line",
    "add_log_level_argument",
]
