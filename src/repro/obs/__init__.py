"""``repro.obs`` — the unified observability layer.

Three pillars, all zero-cost when disabled:

* **Trace bus** (:mod:`.tracer`, :mod:`.events`): a bounded ring buffer of
  typed event records emitted from hook points in the core, the caches,
  the coherence bus, the TRAQ, the recorder and the replayer, with
  category/severity filtering and exporters (:mod:`.exporters`) to JSONL
  and the Chrome trace-event format (Perfetto-loadable).
* **Metrics registry** (:mod:`.metrics`): named counters, gauges and
  distribution metrics collected into flat :class:`MetricsSnapshot`
  dicts with before/after ``diff`` support.
* **Divergence forensics** (:mod:`.forensics`): when replay verification
  fails, a :class:`DivergenceReport` names the culprit core, chunk and
  address and quotes the trace bus's recent history.
"""

from .events import (
    CacheEvictEvent,
    CacheMissEvent,
    Category,
    ChunkCutEvent,
    CoherenceEvent,
    DivergenceEvent,
    InstrCountEvent,
    InstrPerformEvent,
    ReplayStepEvent,
    Severity,
    TraceEvent,
    TraqDequeueEvent,
    TraqEnqueueEvent,
    WriteBufferDrainEvent,
)
from .exporters import (
    chrome_trace_events,
    event_to_dict,
    export_chrome_trace,
    export_jsonl,
)
from .forensics import DivergenceReport, build_report, raise_divergence
from .metrics import (
    Counter,
    DistributionMetric,
    Gauge,
    MetricsRegistry,
    MetricsSnapshot,
)
from .tracer import Tracer

__all__ = [
    "Category",
    "Severity",
    "TraceEvent",
    "InstrPerformEvent",
    "InstrCountEvent",
    "CacheMissEvent",
    "CacheEvictEvent",
    "CoherenceEvent",
    "WriteBufferDrainEvent",
    "TraqEnqueueEvent",
    "TraqDequeueEvent",
    "ChunkCutEvent",
    "ReplayStepEvent",
    "DivergenceEvent",
    "Tracer",
    "Counter",
    "Gauge",
    "DistributionMetric",
    "MetricsRegistry",
    "MetricsSnapshot",
    "event_to_dict",
    "export_jsonl",
    "chrome_trace_events",
    "export_chrome_trace",
    "DivergenceReport",
    "build_report",
    "raise_divergence",
]
