"""Continuous performance observatory: bench history + regression report.

``repro.tools bench`` measures the simulation kernels and — beyond the
latest-snapshot ``BENCH_kernel.json`` — appends one :class:`PerfRecord`
per (workload, config, optimized kernel) to an append-only JSONL history
file (``BENCH_history.jsonl``).  Each record carries the config content
hash, the git revision, wall time, simulated cycles per second and that
kernel's speedup over the lockstep reference, so the history is
comparable across machines, checkouts and time.

``repro.tools perf-report`` reads that history and compares the newest
record of every (workload, config-hash) series against a *rolling
baseline* — the median of the preceding ``window`` records — with a
relative ``tolerance``.  CI gates on the report: a throughput or speedup
drop beyond tolerance fails loudly instead of silently eroding the
snapshot file.  An optional absolute ``floor_speedup`` keeps the old
hard-threshold guarantee meaningful even while the history is too short
to form a baseline.

Corrupt history lines (torn writes, merge damage) are skipped and
counted, never fatal — the observatory must keep working on a damaged
file.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..common.hashing import stable_digest

__all__ = ["PERFDB_SCHEMA", "PerfRecord", "RegressionCheck", "PerfReport",
           "append_records", "load_history", "git_revision",
           "records_from_bench_report", "regression_report"]

#: Bumped when the history-record layout changes; older records are
#: skipped (not errors) so histories survive schema evolution.
PERFDB_SCHEMA = 1

#: Rolling-baseline defaults shared by the CLI and CI.
DEFAULT_TOLERANCE = 0.25
DEFAULT_WINDOW = 5


@dataclass(frozen=True)
class PerfRecord:
    """One benchmarked (workload, config) point in the history."""

    schema: int
    timestamp: float
    git_rev: str
    config_hash: str
    workload: str
    cycles: int
    instructions: int
    wall_s: float
    sim_cycles_per_s: float
    speedup: float
    kernel: str = "event"

    def to_dict(self) -> dict:
        """JSONL line payload."""
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "PerfRecord":
        """Rebuild one history line; raises on missing/mistyped fields."""
        record = PerfRecord(
            schema=int(data["schema"]),
            timestamp=float(data["timestamp"]),
            git_rev=str(data["git_rev"]),
            config_hash=str(data["config_hash"]),
            workload=str(data["workload"]),
            cycles=int(data["cycles"]),
            instructions=int(data["instructions"]),
            wall_s=float(data["wall_s"]),
            sim_cycles_per_s=float(data["sim_cycles_per_s"]),
            speedup=float(data["speedup"]),
            kernel=str(data.get("kernel", "event")),
        )
        if record.schema != PERFDB_SCHEMA:
            raise ValueError(f"history schema {record.schema}, "
                             f"expected {PERFDB_SCHEMA}")
        return record


def git_revision(cwd: str | None = None) -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, cwd=cwd,
                             timeout=10)
    except OSError:
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def append_records(path: str | Path, records) -> int:
    """Append ``records`` to the JSONL history; returns how many."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("a") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def load_history(path: str | Path) -> tuple[list[PerfRecord], int]:
    """Parse a history file; returns ``(records, skipped_lines)``.

    Undecodable or schema-mismatched lines are skipped and counted — a
    torn append or a bad merge must not take the observatory down.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    records: list[PerfRecord] = []
    skipped = 0
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(PerfRecord.from_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError):
            skipped += 1
    return records, skipped


def records_from_bench_report(report: dict, *, timestamp: float,
                              git_rev: str) -> list[PerfRecord]:
    """History records for one ``repro.tools bench`` report dict.

    One record per (workload, non-lockstep kernel): every optimized
    kernel gets its own history series, each carrying its speedup over
    the shared lockstep reference.
    """
    config_hash = stable_digest(report["config"])[:16]
    records = []
    for workload in sorted(report["workloads"]):
        entry = report["workloads"][workload]
        lockstep_wall = entry["kernels"]["lockstep"]["wall_s"]
        for kernel in sorted(entry["kernels"]):
            if kernel == "lockstep":
                continue
            data = entry["kernels"][kernel]
            speedup = entry.get("speedups", {}).get(
                kernel, round(lockstep_wall / data["wall_s"], 3))
            records.append(PerfRecord(
                schema=PERFDB_SCHEMA,
                timestamp=timestamp,
                git_rev=git_rev,
                config_hash=config_hash,
                workload=workload,
                cycles=entry["cycles"],
                instructions=entry["instructions"],
                wall_s=data["wall_s"],
                sim_cycles_per_s=data["sim_cycles_per_s"],
                speedup=speedup,
                kernel=kernel,
            ))
    return records


@dataclass(frozen=True)
class RegressionCheck:
    """One metric of one series compared against its rolling baseline."""

    workload: str
    config_hash: str
    metric: str
    latest: float
    baseline: float | None      # None: not enough history yet
    ratio: float | None         # latest / baseline
    regressed: bool
    note: str = ""
    kernel: str = "event"


@dataclass
class PerfReport:
    """The outcome of a regression scan over the whole history."""

    checks: list[RegressionCheck] = field(default_factory=list)
    skipped_lines: int = 0
    tolerance: float = DEFAULT_TOLERANCE
    window: int = DEFAULT_WINDOW
    floor_speedup: float | None = None
    #: Per-kernel absolute speedup floors ({"compiled": 5.0, ...});
    #: ``floor_speedup`` is shorthand for the event kernel's entry.
    floor_speedups: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True when no check regressed."""
        return not any(check.regressed for check in self.checks)

    @property
    def regressions(self) -> list[RegressionCheck]:
        """Only the failing checks."""
        return [check for check in self.checks if check.regressed]

    def render(self) -> str:
        """Human-readable report table."""
        lines = [f"perf report: {len(self.checks)} checks, "
                 f"tolerance {self.tolerance:.0%}, "
                 f"window {self.window}"
                 + (f", floor speedup {self.floor_speedup:.2f}x"
                    if self.floor_speedup is not None else "")]
        if self.skipped_lines:
            lines.append(f"  (skipped {self.skipped_lines} corrupt "
                         f"history lines)")
        for check in self.checks:
            status = "REGRESSED" if check.regressed else "ok"
            if check.baseline is None:
                detail = f"latest {check.latest:.4g} (no baseline yet)"
            else:
                detail = (f"latest {check.latest:.4g} vs baseline "
                          f"{check.baseline:.4g} "
                          f"({100.0 * (check.ratio - 1.0):+.1f}%)")
            note = f" [{check.note}]" if check.note else ""
            lines.append(f"  {status:>9}  {check.workload}"
                         f"@{check.config_hash[:8]}/{check.kernel} "
                         f"{check.metric}: {detail}{note}")
        lines.append(f"overall: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines) + "\n"


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def regression_report(records: list[PerfRecord], *,
                      tolerance: float = DEFAULT_TOLERANCE,
                      window: int = DEFAULT_WINDOW,
                      floor_speedup: float | None = None,
                      floor_speedups: dict | None = None,
                      skipped_lines: int = 0) -> PerfReport:
    """Compare every series' newest record against its rolling baseline.

    A series is one (workload, config-hash, kernel) triple; records keep
    file (append) order.  The baseline of a metric is the median over up
    to ``window`` records preceding the newest one; a drop below
    ``baseline * (1 - tolerance)`` regresses.  Absolute speedup floors
    (the old CI hard thresholds) additionally apply to the newest record
    of the matching kernel's series even with no baseline:
    ``floor_speedups`` maps kernel name to floor, and ``floor_speedup``
    is shorthand for the event kernel's floor.
    """
    floors = dict(floor_speedups or {})
    if floor_speedup is not None:
        floors.setdefault("event", floor_speedup)
    report = PerfReport(tolerance=tolerance, window=window,
                        floor_speedup=floor_speedup,
                        floor_speedups=floors,
                        skipped_lines=skipped_lines)
    series: dict[tuple[str, str, str], list[PerfRecord]] = {}
    for record in records:
        series.setdefault((record.workload, record.config_hash,
                           record.kernel), []).append(record)
    for (workload, config_hash, kernel) in sorted(series):
        history = series[(workload, config_hash, kernel)]
        latest = history[-1]
        baseline_window = history[-1 - window:-1]
        for metric in ("sim_cycles_per_s", "speedup"):
            latest_value = getattr(latest, metric)
            if baseline_window:
                baseline = _median([getattr(record, metric)
                                    for record in baseline_window])
                ratio = (latest_value / baseline) if baseline else None
                regressed = (baseline > 0
                             and latest_value < baseline * (1.0 - tolerance))
                note = ""
            else:
                baseline = ratio = None
                regressed = False
                note = "insufficient history"
            report.checks.append(RegressionCheck(
                workload=workload, config_hash=config_hash, metric=metric,
                latest=latest_value, baseline=baseline, ratio=ratio,
                regressed=regressed, note=note, kernel=kernel))
        floor = floors.get(kernel)
        if floor is not None:
            report.checks.append(RegressionCheck(
                workload=workload, config_hash=config_hash,
                metric="speedup_floor", latest=latest.speedup,
                baseline=floor,
                ratio=(latest.speedup / floor if floor else None),
                regressed=latest.speedup < floor,
                note=f"absolute floor {floor:.2f}x", kernel=kernel))
    return report
