"""Command-line tools: record, replay, inspect and sweep recordings.

Usage::

    python -m repro.tools record --workload fft --cores 8 --out rec/
    python -m repro.tools replay rec/ --variant opt_4k
    python -m repro.tools inspect rec/
    python -m repro.tools sweep --workloads fft,radix --cores 4,8 \\
        --consistency RC,TSO --jobs 4 --scheduler stealing \\
        --cache-url http://cachehost:8123
    python -m repro.tools cache-serve --port 8123 --store sweep.sqlite
    python -m repro.tools sweep-bench --cells 64 --jobs 8 --min-speedup 3
    python -m repro.tools bench --workloads fft --cores 16 \\
        --out BENCH_kernel.json --min-speedup 1.5
    python -m repro.tools profile --workload fft --cores 16
    python -m repro.tools perf-report --history BENCH_history.jsonl
    python -m repro.tools fuzz --budget 200 --seed 0 --jobs 2 \\
        --emit-regressions fuzz-out/

``record`` runs a named workload (or a saved ``program.json``) under the
configured machine and saves the recording directory; ``replay``
deterministically replays a stored variant, verifying against the stored
execution; ``inspect`` summarizes the logs without replaying.  ``sweep``
records a (workload x cores x consistency) grid through the parallel
sharded runner with the persistent result cache — interrupt it and rerun
(``--resume``) and it picks up where it left off.  The cache is
pluggable (``--cache-backend dir:/sqlite:/http://``), ``cache-serve``
runs the shared HTTP cache daemon, ``--scheduler stealing`` swaps the
static shard split for the work-stealing engine whose in-flight leases
dedupe cells across cooperating sweep processes, and ``sweep-bench``
measures all of it (straggler-skew speedup, lease dedupe, warm remote
hits) into the perf-observatory history.  ``bench`` times the
event-driven and lockstep simulation kernels on the same workloads,
checks their results are bit-identical, writes the comparison to a JSON
report and appends one record per workload to the append-only
``BENCH_history.jsonl`` perf observatory.  ``profile`` attributes every
simulated core-cycle of one run to busy/stall-reason buckets and the
host wall time to kernel components (:mod:`repro.obs.profiler`).
``perf-report`` compares the newest bench-history records against a
rolling baseline and fails on regression — the CI perf gate.  ``fuzz``
runs the coverage-guided adversarial fuzzer (:mod:`repro.fuzz`): mutated
program genomes are driven toward rare recorder states and checked by
the differential oracle stack, with failures auto-minimized into
ready-to-commit regression entries.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from dataclasses import replace
from pathlib import Path

from .common.config import (
    CoherenceProtocol,
    ConsistencyModel,
    MachineConfig,
    RecorderConfig,
    RecorderMode,
)
from .common.errors import (
    ConfigError,
    FuzzError,
    LogFormatError,
    ReplayDivergenceError,
    WorkloadError,
)
from .obs.logging import add_log_level_argument, setup_logging
from .recorder.logfmt import IntervalFrame
from .sim import Machine
from .sim.kernel import KERNELS
from .storage import load_program, load_recording, save_recording
from .workloads import WORKLOAD_NAMES, build_workload


def _build_variants(names: list[str]) -> dict[str, RecorderConfig]:
    variants = {}
    for name in names:
        mode_part, _, cap_part = name.partition("_")
        mode = RecorderMode(mode_part)
        cap = None if cap_part in ("", "inf") else int(cap_part)
        variants[name] = RecorderConfig(mode=mode,
                                        max_interval_instructions=cap)
    return variants


def cmd_record(args) -> int:
    if args.program:
        program = load_program(args.program)
    else:
        program = build_workload(args.workload, num_threads=args.cores,
                                 scale=args.scale, seed=args.seed)
    config = replace(
        MachineConfig(num_cores=program.num_threads, seed=args.seed),
        consistency=ConsistencyModel(args.consistency),
        protocol=CoherenceProtocol(args.protocol))
    machine = Machine(config, _build_variants(args.variants))
    tracer = None
    if args.trace or args.trace_out:
        from .obs import Tracer
        tracer = Tracer()
    if not args.out and not args.result_out:
        print("error: record needs --out and/or --result-out",
              file=sys.stderr)
        return 2
    result = machine.run(
        program, collect_dependence_edges=args.edges, tracer=tracer,
        kernel=args.kernel)
    where = []
    if args.out:
        where.append(str(save_recording(result, args.out)))
    if args.result_out:
        from .sim.serialize import run_result_to_dict
        with open(args.result_out, "w") as handle:
            json.dump(run_result_to_dict(result), handle, sort_keys=True)
        where.append(args.result_out)
    print(f"recorded {result.total_instructions} instructions "
          f"({result.cycles} cycles, {len(result.cores)} cores) -> "
          + ", ".join(where))
    if args.trace_out:
        from .obs import export_chrome_trace
        export_chrome_trace(tracer.events(), args.trace_out)
        print(f"  trace ({len(tracer)} events) -> {args.trace_out}")
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            json.dump(result.metrics.to_dict(), handle, indent=1,
                      sort_keys=True)
        print(f"  metrics -> {args.metrics_out}")
    for variant in args.variants:
        stats = result.recording_stats(variant)
        print(f"  {variant}: {stats.log_bits} bits "
              f"({stats.bits_per_kilo_instruction():.0f} b/KI, "
              f"{stats.reordered_total} reordered)")
    return 0


def cmd_replay(args) -> int:
    stored = load_recording(args.recording)
    variants = args.variant or list(stored.variants)
    for variant in variants:
        if args.parallel:
            from .replay.parallel import ParallelReplayer
            total = sum(f["instructions"] for f in stored.core_facts)
            cpi = (stored.cycles * len(stored.core_facts) / total
                   if total else 1.0)
            replayer = ParallelReplayer(
                stored.program, stored.log_entries(variant),
                stored.edges(variant), stored.config.replay_cost,
                recorded_cpi=cpi, variant=variant)
            _memory, _contexts, counts, sequential, makespan = \
                replayer.replay()
            print(f"{variant}: parallel replay OK "
                  f"({counts.intervals} intervals, "
                  f"speedup {sequential / makespan:.2f}x)")
            continue
        result = stored.replay(variant, verify=not args.no_verify)
        status = "VERIFIED" if result.verified else "replayed (unverified)"
        normalized = result.normalized_to_recording(stored.cycles)
        print(f"{variant}: {status} — {result.counts.instructions} native "
              f"instructions, {result.counts.injected_loads} injected "
              f"loads, {result.counts.patched_writes} patched writes; "
              f"est. {normalized['total']:.1f}x recording time")
    return 0


def _parse_chunk(text: str) -> tuple[int, int]:
    """Parse a ``CORE:CISN`` chunk reference."""
    core, sep, cisn = text.partition(":")
    try:
        if not sep:
            raise ValueError
        return int(core, 0), int(cisn, 0)
    except ValueError:
        raise ValueError(f"expected CORE:CISN, got {text!r}") from None


def _parse_addr_value(text: str) -> tuple[int, int | None]:
    """Parse an ``ADDR`` or ``ADDR=VALUE`` reference (0x… accepted)."""
    addr_part, sep, value_part = text.partition("=")
    try:
        return int(addr_part, 0), (int(value_part, 0) if sep else None)
    except ValueError:
        raise ValueError(f"expected ADDR[=VALUE], got {text!r}") from None


def _summarize_directory(stored, args) -> int:
    """The classic recording-directory summary (no replay needed)."""
    config = stored.config
    print(f"recording: {stored.root}")
    print(f"  program : {stored.program.name} "
          f"({stored.program.num_threads} threads, "
          f"{stored.program.total_instructions()} static instructions)")
    print(f"  machine : {config.num_cores} cores, "
          f"{config.consistency.value}, {config.protocol.value}, "
          f"{stored.cycles} cycles")
    for variant in stored.variants:
        per_core = stored.log_entries(variant)
        entries = sum(len(core) for core in per_core)
        intervals = sum(1 for core in per_core for entry in core
                        if isinstance(entry, IntervalFrame))
        bits = stored.log_bits(variant)
        print(f"  {variant}: {entries} entries, {intervals} intervals, "
              f"{bits} bits ({bits / 8 / 1024:.2f} KiB on disk)")
        if args.verbose:
            kinds: dict[str, int] = {}
            for core in per_core:
                for entry in core:
                    kinds[type(entry).__name__] = \
                        kinds.get(type(entry).__name__, 0) + 1
            for kind, count in sorted(kinds.items()):
                print(f"      {kind}: {count}")
        if args.analyze:
            from .analysis import merge_profiles, profile_log, \
                render_profile, render_timeline
            profile = merge_profiles(profile_log(core) for core in per_core)
            print(render_profile(profile, name=variant), end="")
            print(render_timeline(per_core), end="")
    return 0


def cmd_inspect(args) -> int:
    queries = any(value is not None for value in (
        args.state_at, args.first_write, args.last_write, args.who_read,
        args.timeline, args.hb_slice))
    path = Path(args.recording)
    if path.is_dir():
        stored = load_recording(path)
        if not queries and not args.json:
            return _summarize_directory(stored, args)
        inspector = stored.inspector(args.variant,
                                     checkpoint_every=args.checkpoint_every)
    else:
        from .obs.inspect import ReplayInspector
        from .sim.serialize import run_result_from_dict

        result = run_result_from_dict(json.loads(path.read_text()))
        variant = args.variant or sorted(result.recordings)[0]
        inspector = ReplayInspector.from_run_result(
            result, variant, checkpoint_every=args.checkpoint_every)

    payload: dict = {"summary": inspector.summary()}
    blocks: list[str] = []
    if args.state_at is not None:
        core, cisn = _parse_chunk(args.state_at)
        view = inspector.state_at(core, cisn)
        payload["state"] = view.to_dict()
        blocks.append(view.render())
    if args.first_write is not None:
        addr, _ = _parse_addr_value(args.first_write)
        access = inspector.first_write(addr)
        payload["first_write"] = None if access is None else access.to_dict()
        blocks.append(f"first write to {addr:#x}: "
                      + (access.render() if access else "never written"))
    if args.last_write is not None:
        addr, _ = _parse_addr_value(args.last_write)
        access = inspector.last_write(addr)
        payload["last_write"] = None if access is None else access.to_dict()
        blocks.append(f"last write to {addr:#x}: "
                      + (access.render() if access else "never written"))
    if args.who_read is not None:
        addr, value = _parse_addr_value(args.who_read)
        reads = inspector.who_read(addr, value)
        payload["who_read"] = [access.to_dict() for access in reads]
        header = (f"reads of {addr:#x}"
                  + (f" = {value:#x}" if value is not None else ""))
        blocks.append(f"{header}: {len(reads)}\n"
                      + "\n".join(f"  {access.render()}"
                                  for access in reads))
    if args.timeline is not None:
        spans = inspector.timeline(args.timeline)
        payload["timeline"] = spans
        lines = [f"core {args.timeline} timeline ({len(spans)} chunks):"]
        for span in spans:
            lines.append(
                f"  chunk {span['cisn']:>4} pos {span['position']:>4} "
                f"cycles {span['start']}..{span['end']}: "
                f"{span['instructions']} instr, "
                f"{span['injected_loads']} injected, "
                f"{span['dummies']} dummies, "
                f"{span['patched_writes']} patched")
        blocks.append("\n".join(lines))
    if args.hb_slice is not None:
        core, cisn = _parse_chunk(args.hb_slice)
        hb = inspector.hb_slice(core, cisn, depth=args.hb_depth)
        payload["hb_slice"] = hb.to_dict()
        blocks.append(hb.render())

    if args.json:
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    summary = payload["summary"]
    print(f"inspect [{summary['variant']}]: {summary['intervals']} chunks, "
          f"{summary['checkpoints']} checkpoints "
          f"(every {summary['checkpoint_every']}), "
          f"{summary['accesses']} accesses, "
          f"HB {summary['hb_source']} ({summary['hb_edges']} edges)")
    for block in blocks:
        print(block)
    return 0


def cmd_sweep(args) -> int:
    if args.resume and args.no_cache:
        print("error: --resume needs the result cache; drop --no-cache",
              file=sys.stderr)
        return 2
    if args.cache_backend and args.cache_url:
        print("error: --cache-backend and --cache-url are two spellings of "
              "the same thing; give one", file=sys.stderr)
        return 2
    backend_spec = args.cache_backend or args.cache_url
    if args.no_cache and backend_spec:
        print("error: --no-cache contradicts --cache-backend/--cache-url",
              file=sys.stderr)
        return 2
    from .harness.parallel_runner import (DEFAULT_CACHE_DIR, ParallelRunner,
                                          ResultCache)
    from .harness.report import format_table, render_sweep_summary
    from .harness.runner import RunKey

    workloads = ([name.strip() for name in args.workloads.split(",")]
                 if args.workloads != "all" else list(WORKLOAD_NAMES))
    unknown = [name for name in workloads if name not in WORKLOAD_NAMES]
    if unknown:
        print(f"error: unknown workloads: {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    core_counts = [int(item) for item in args.cores.split(",")]
    models = [ConsistencyModel(item.strip())
              for item in args.consistency.split(",")]

    keys = [RunKey(workload, cores, args.scale, args.seed, model,
                   args.with_baselines)
            for workload in workloads
            for cores in core_counts
            for model in models]
    if args.no_cache:
        cache = None
    elif backend_spec:
        # Malformed specs raise CacheBackendError (a ConfigError), which
        # main() maps to the usage exit code 2.
        cache = ResultCache.from_spec(backend_spec)
    else:
        cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    from .obs.telemetry import TelemetryConfig
    telemetry = TelemetryConfig(
        capture_trace=args.capture_trace or bool(args.trace_out),
        trace_capacity=args.trace_capacity)
    # Progress lines go through the structured repro.harness.sweep logger
    # (configured by --log-level in main), not ad-hoc stderr prints.
    runner = ParallelRunner(
        jobs=args.jobs, cache=cache, timeout_s=args.timeout,
        telemetry=telemetry, scheduler=args.scheduler,
        lease_ttl_s=args.lease_ttl)
    results = runner.run(keys)

    rows = []
    for key in keys:
        result = results[key]
        stats = result.recording_stats("opt_4k")
        rows.append([key.workload, key.cores, key.consistency.value,
                     result.cycles, result.total_instructions,
                     stats.bits_per_kilo_instruction()])
    print(format_table(
        "Sweep results",
        ["workload", "cores", "model", "cycles", "instructions",
         "opt_4k b/KI"], rows, floatfmt="{:.1f}"))
    print(render_sweep_summary(runner.registry.snapshot()))
    if runner.aggregator.quarantined:
        for label, reason in runner.aggregator.quarantined:
            print(f"warning: telemetry quarantined for {label}: {reason}",
                  file=sys.stderr)
    if args.results_out:
        import json

        from .sim.serialize import run_result_to_dict
        # Fully deterministic artifact: serialized results keyed by shard
        # label, no wall times or counters — byte-identical no matter the
        # scheduler, backend, job width or cache temperature.
        payload = {key.label(): run_result_to_dict(results[key])
                   for key in sorted(keys, key=RunKey.label)}
        with open(args.results_out, "w") as handle:
            json.dump(payload, handle, sort_keys=True,
                      separators=(",", ":"))
        print(f"  sweep results -> {args.results_out}")
    if args.metrics_out:
        import json
        with open(args.metrics_out, "w") as handle:
            json.dump(runner.registry.snapshot().to_dict(), handle,
                      indent=1, sort_keys=True)
        print(f"  sweep metrics -> {args.metrics_out}")
    if args.trace_out:
        import json
        events = runner.aggregator.trace_events()
        with open(args.trace_out, "w") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        print(f"  merged trace ({len(events)} events) -> {args.trace_out}")
    return 0


def _bench_cell_worker(payload: dict) -> dict:
    """``sweep-bench`` worker: one synthetic sweep cell (pure sleep).

    The fabric bench measures *scheduling*, not simulation — a sleep of
    the cell's nominal cost makes the straggler skew exact and the run
    fast enough for CI.
    """
    import time
    time.sleep(payload["sleep_s"])
    return {"index": payload["index"], "attempt": payload["attempt"]}


def _bench_partition_worker(payload: dict) -> dict:
    """``sweep-bench`` worker: one static partition, run serially.

    This is the honest pre-split baseline: each worker receives its
    contiguous slice of the grid up front and must finish all of it,
    exactly like the pre-PR static shard split — a straggler-heavy slice
    idles every other worker.
    """
    import time
    for sleep_s in payload["sleeps"]:
        time.sleep(sleep_s)
    return {"cells": len(payload["sleeps"])}


def cmd_sweep_bench(args) -> int:
    import threading
    import time
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures import wait as futures_wait

    from .common.hashing import stable_digest
    from .harness.cached import CacheDaemon
    from .harness.cachestore import MemoryStore, RemoteStore
    from .harness.stealing import (FabricHooks, WorkStealingPool,
                                   static_partitions)

    jobs = max(2, args.jobs)
    cells = max(jobs, args.cells)
    heavy = min(max(1, args.heavy), cells)
    # Heavy cells clustered at the front — the worst case for a
    # contiguous pre-partition and the common shape of a grid sorted by
    # workload size.
    sleeps = ([args.heavy_ms / 1000.0] * heavy
              + [args.light_ms / 1000.0] * (cells - heavy))

    pool = ProcessPoolExecutor(max_workers=jobs)
    # Warm every worker process up front so spawn cost hits neither arm.
    futures_wait([pool.submit(_bench_cell_worker,
                              {"index": -1, "attempt": 0, "sleep_s": 0.0})
                  for _ in range(jobs)])

    # ---- arm 1: static contiguous pre-partition (one task per worker).
    parts = static_partitions(cells, jobs)
    started = time.perf_counter()
    futures_wait([pool.submit(_bench_partition_worker,
                              {"sleeps": [sleeps[i] for i in part]})
                  for part in parts])
    static_s = time.perf_counter() - started

    # ---- arm 2: work stealing over the same cells and the same pool.
    engine = WorkStealingPool(jobs=jobs, worker=_bench_cell_worker)
    started = time.perf_counter()
    engine.map(list(range(cells)),
               payload=lambda i, attempt: {"index": i, "attempt": attempt,
                                           "sleep_s": sleeps[i]},
               executor=pool)
    stealing_s = time.perf_counter() - started
    speedup = static_s / stealing_s if stealing_s > 0 else float("inf")

    # ---- arm 3: two cooperating schedulers, one lease domain.  Both
    # sweep the same cells concurrently; leases must make each cell
    # execute exactly once in total, the other rank deduping from the
    # shared store.
    store = MemoryStore()
    lock = threading.Lock()
    executed = [0, 0]
    deduped = [0, 0]

    def run_rank(rank: int) -> None:
        owner = f"rank{rank}"

        def probe(i):
            if store.get(f"cell-{i}") is None:
                return None
            return {"dedup": True, "index": i}

        def on_complete(index, item, reply):
            with lock:
                if reply.get("dedup"):
                    deduped[rank] += 1
                else:
                    # Publish BEFORE the engine releases our lease (it
                    # calls release after on_complete returns) — the
                    # ordering the dedupe guarantee rests on.
                    store.put(f"cell-{item}", b"done")
                    executed[rank] += 1

        hooks = FabricHooks(
            probe=probe,
            acquire=lambda i: store.acquire_lease(f"cell-{i}", owner, 30.0),
            release=lambda i: store.release_lease(f"cell-{i}", owner))
        rank_engine = WorkStealingPool(jobs=max(1, jobs // 2),
                                       worker=_bench_cell_worker,
                                       hooks=hooks, poll_s=0.005)
        rank_engine.map(
            list(range(cells)),
            payload=lambda i, attempt: {"index": i, "attempt": attempt,
                                        "sleep_s": args.light_ms / 1000.0},
            on_complete=on_complete,
            executor=pool)

    threads = [threading.Thread(target=run_rank, args=(rank,))
               for rank in (0, 1)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    pool.shutdown()
    total_executed = sum(executed)
    exactly_once = total_executed == cells

    # ---- arm 4: warm remote-cache hits through the HTTP daemon.
    daemon = CacheDaemon(MemoryStore()).start()
    remote = RemoteStore(daemon.url)
    blob = json.dumps({"pad": "x" * 2000}).encode()
    for i in range(cells):
        remote.put(f"warm-{i}", blob)
    lookups_ms = []
    for _ in range(args.warm_lookups):
        started = time.perf_counter()
        remote.get("warm-0")
        lookups_ms.append((time.perf_counter() - started) * 1000.0)
    started = time.perf_counter()
    found = remote.get_many([f"warm-{i}" for i in range(cells)])
    batch_s = time.perf_counter() - started
    remote.close()
    daemon.stop()
    lookups_ms.sort()
    warm_ms = lookups_ms[len(lookups_ms) // 2]

    config = {"cells": cells, "heavy": heavy, "heavy_ms": args.heavy_ms,
              "light_ms": args.light_ms, "jobs": jobs}
    report = {
        "config": config,
        "skew": {"static_s": round(static_s, 4),
                 "stealing_s": round(stealing_s, 4),
                 "speedup": round(speedup, 3)},
        "fabric": {"executed": executed, "deduped": deduped,
                   "total_executed": total_executed, "cells": cells,
                   "exactly_once": exactly_once},
        "remote": {"warm_hit_ms_p50": round(warm_ms, 3),
                   "warm_hit_ms_max": round(lookups_ms[-1], 3),
                   "batch_s": round(batch_s, 4),
                   "batch_cells_per_s": round(len(found) / batch_s, 1)
                   if batch_s > 0 else float("inf")},
    }

    print(f"sweep-bench: skewed {cells}-cell grid, {heavy} heavy cells, "
          f"{jobs} workers")
    print(f"  static split   {static_s:8.3f}s")
    print(f"  work stealing  {stealing_s:8.3f}s   ({speedup:.2f}x)")
    print(f"  lease dedupe   {total_executed}/{cells} cells executed "
          f"across 2 cooperating schedulers "
          f"(rank0 {executed[0]}+{deduped[0]} dedup, "
          f"rank1 {executed[1]}+{deduped[1]} dedup)")
    print(f"  warm remote    {warm_ms:.2f}ms/hit (p50), "
          f"{cells}-key batch in {batch_s * 1000:.1f}ms")

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
        print(f"  report -> {args.out}")
    if not args.no_history:
        from .obs.perfdb import (PERFDB_SCHEMA, PerfRecord, append_records,
                                 git_revision)
        record = PerfRecord(
            schema=PERFDB_SCHEMA, timestamp=time.time(),
            git_rev=git_revision(), config_hash=stable_digest(config)[:16],
            workload="sweep_fabric_skew", cycles=cells, instructions=cells,
            wall_s=round(stealing_s, 4),
            sim_cycles_per_s=round(cells / stealing_s, 2)
            if stealing_s > 0 else 0.0,
            speedup=round(speedup, 3), kernel="stealing")
        append_records(args.history, [record])
        print(f"  history +1 record -> {args.history}")

    code = 0
    if not exactly_once:
        print(f"FAIL: {total_executed} executions for {cells} cells — "
              f"lease dedupe must make each cell execute exactly once",
              file=sys.stderr)
        code = 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(f"FAIL: stealing speedup {speedup:.2f}x below the "
              f"--min-speedup {args.min_speedup:.2f}x gate",
              file=sys.stderr)
        code = 1
    return code


def cmd_cache_serve(args) -> int:
    from .harness.cached import serve
    from .harness.cachestore import MemoryStore, SQLiteStore

    store = SQLiteStore(args.store) if args.store else MemoryStore()
    serve(store, host=args.host, port=args.port)
    return 0


def cmd_bench(args) -> int:
    import json
    import time

    from .sim.serialize import run_result_to_dict

    workloads = [name.strip() for name in args.workloads.split(",")]
    unknown = [name for name in workloads if name not in WORKLOAD_NAMES]
    if unknown:
        print(f"error: unknown workloads: {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    base = MachineConfig(num_cores=args.cores, seed=args.seed)
    config = replace(
        base,
        consistency=ConsistencyModel(args.consistency),
        l1=replace(base.l1, size_kb=args.l1_kb, assoc=args.l1_assoc,
                   mshr_entries=args.mshr),
        memory=replace(base.memory, roundtrip_cycles=args.mem_cycles))

    report = {
        "config": {
            "cores": args.cores, "scale": args.scale, "seed": args.seed,
            "consistency": args.consistency, "l1_kb": args.l1_kb,
            "l1_assoc": args.l1_assoc, "mshr": args.mshr,
            "mem_cycles": args.mem_cycles, "repeats": args.repeats,
        },
        "workloads": {},
    }
    worst_speedup = None
    worst_compiled = None
    for name in workloads:
        program = build_workload(name, num_threads=args.cores,
                                 scale=args.scale, seed=args.seed)
        entry = {"kernels": {}}
        fingerprints = {}
        for kernel in sorted(KERNELS):
            best_wall = None
            result = None
            for _ in range(args.repeats):
                machine = Machine(config)
                start = time.perf_counter()
                result = machine.run(program, kernel=kernel)
                wall = time.perf_counter() - start
                if best_wall is None or wall < best_wall:
                    best_wall = wall
            fingerprints[kernel] = json.dumps(
                run_result_to_dict(result), sort_keys=True)
            entry["kernels"][kernel] = {
                "wall_s": round(best_wall, 4),
                "sim_cycles_per_s": round(result.cycles / best_wall, 1),
            }
            entry["cycles"] = result.cycles
            entry["instructions"] = result.total_instructions
        lockstep_wall = entry["kernels"]["lockstep"]["wall_s"]
        entry["speedups"] = {
            kernel: round(lockstep_wall / data["wall_s"], 3)
            for kernel, data in entry["kernels"].items()
            if kernel != "lockstep"}
        speedup = entry["speedups"]["event"]
        identical = len(set(fingerprints.values())) == 1
        entry["speedup"] = speedup
        entry["identical"] = identical
        report["workloads"][name] = entry
        worst_speedup = (speedup if worst_speedup is None
                         else min(worst_speedup, speedup))
        worst_compiled = (entry["speedups"]["compiled"]
                          if worst_compiled is None
                          else min(worst_compiled,
                                   entry["speedups"]["compiled"]))
        ratios = " ".join(f"{kernel} {ratio:.2f}x" for kernel, ratio
                          in sorted(entry["speedups"].items()))
        print(f"{name}: lockstep {lockstep_wall:.2f}s"
              f" speedups: {ratios} identical={identical}")
        if not identical:
            print(f"error: kernels diverged on {name}", file=sys.stderr)
            return 1

    if args.min_speedup is not None:
        report["min_speedup"] = args.min_speedup
        report["pass"] = worst_speedup >= args.min_speedup
    if args.min_compiled_speedup is not None:
        report["min_compiled_speedup"] = args.min_compiled_speedup
        report["pass"] = (report.get("pass", True)
                         and worst_compiled >= args.min_compiled_speedup)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"  report -> {args.out}")
    if not args.no_history:
        from .obs.perfdb import (append_records, git_revision,
                                 records_from_bench_report)
        records = records_from_bench_report(report, timestamp=time.time(),
                                            git_rev=git_revision())
        append_records(args.history, records)
        print(f"  history +{len(records)} records -> {args.history}")
    if args.min_speedup is not None and worst_speedup < args.min_speedup:
        print(f"error: event kernel speedup {worst_speedup:.2f}x below "
              f"required {args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    if (args.min_compiled_speedup is not None
            and worst_compiled < args.min_compiled_speedup):
        print(f"error: compiled kernel speedup {worst_compiled:.2f}x below "
              f"required {args.min_compiled_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


def cmd_profile(args) -> int:
    import json

    from .obs.profiler import KernelProfiler, profile_to_chrome
    from .obs.profiler import render_profile as render_kernel_profile

    program = build_workload(args.workload, num_threads=args.cores,
                             scale=args.scale, seed=args.seed)
    config = replace(MachineConfig(num_cores=args.cores, seed=args.seed),
                     consistency=ConsistencyModel(args.consistency))
    profiler = KernelProfiler()
    result = Machine(config).run(program, kernel=args.kernel,
                                 profiler=profiler)
    profile = profiler.profile()
    print(f"{args.workload}: {result.cycles} cycles, "
          f"{result.total_instructions} instructions, "
          f"{args.cores} cores ({args.kernel} kernel)")
    print(render_kernel_profile(profile), end="")
    unattributed = sum(profile["sim"]["unattributed_cycles"])
    if unattributed:
        print(f"error: {unattributed} unattributed core-cycles "
              f"(attribution must be exact)", file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(profile, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"  profile -> {args.out}")
    if args.chrome_out:
        with open(args.chrome_out, "w") as handle:
            json.dump(profile_to_chrome(profile), handle)
        print(f"  chrome trace -> {args.chrome_out}")
    return 0


def cmd_perf_report(args) -> int:
    from .obs.perfdb import (DEFAULT_TOLERANCE, DEFAULT_WINDOW, load_history,
                             regression_report)

    if not Path(args.history).exists():
        print(f"error: no bench history at {args.history}", file=sys.stderr)
        return 2
    records, skipped = load_history(args.history)
    if not records:
        print(f"perf report: no usable history in {args.history} "
              f"({skipped} corrupt lines skipped)")
        return 0
    tolerance = (DEFAULT_TOLERANCE if args.tolerance is None
                 else args.tolerance)
    window = DEFAULT_WINDOW if args.window is None else args.window
    floors = {}
    if args.floor_compiled_speedup is not None:
        floors["compiled"] = args.floor_compiled_speedup
    report = regression_report(records, tolerance=tolerance, window=window,
                               floor_speedup=args.floor_speedup,
                               floor_speedups=floors,
                               skipped_lines=skipped)
    print(report.render(), end="")
    return 0 if report.passed else 1


#: Known-bad configurations the fuzz harness can deliberately
#: re-introduce (``--inject-bug``) to prove it still catches them:
#: recorder-field overrides, or a ``__codegen_bug__`` key naming one of
#: :data:`repro.sim.compiled.INJECTED_CODEGEN_BUGS` for the compiled
#: kernel only.
INJECTED_BUGS = {
    "timestamp-floor-off": {"interval_timestamp_floor": False},
    "drop-fence-stall": {"__codegen_bug__": "drop-fence-stall"},
}

#: Which oracle must catch each injected bug for the self-test to pass.
INJECTED_BUG_ORACLES = {
    "timestamp-floor-off": "replay:",
    "drop-fence-stall": "compiled-vs-event",
}


def _parse_fuzz_budget(text: str) -> dict:
    """``NNN`` = candidate count (deterministic); ``NNNs`` = wall seconds."""
    if text.endswith("s"):
        return {"budget": None, "wall_budget_s": float(text[:-1])}
    return {"budget": int(text)}


def cmd_fuzz(args) -> int:
    from .fuzz import (FuzzConfig, FuzzSession, load_corpus_dir,
                       random_baseline)

    overrides = dict(INJECTED_BUGS[args.inject_bug]) if args.inject_bug else {}
    config = FuzzConfig(seed=args.seed, jobs=args.jobs, batch=args.batch,
                        overrides=overrides,
                        emit_dir=args.emit_regressions,
                        max_failures=args.max_failures,
                        **_parse_fuzz_budget(args.budget))
    if args.baseline_random and config.budget is None:
        print("error: --baseline-random needs a count budget "
              "(wall-clock budgets are not comparable)", file=sys.stderr)
        return 2
    extra = (load_corpus_dir(args.corpus_dir) if args.corpus_dir else None)

    def note(line: str) -> None:
        print(line, file=sys.stderr)

    session = FuzzSession(config, extra_corpus=extra, note=note)
    report = session.run()
    print(f"fuzz: evaluated {report.evaluated} candidates "
          f"({report.seed_candidates} seeds) in {report.wall_seconds:.1f}s")
    print(f"fuzz: coverage {report.coverage_buckets} buckets "
          f"({report.mutation_new_buckets} found post-seed), "
          f"pool {report.pool_size}, "
          f"minimize evals {report.minimize_evals}")
    for failure in report.failures:
        line = (f"fuzz: FAILURE {failure.oracle} [{failure.origin}] "
                f"minimized {failure.spec.describe()} -> "
                f"{failure.minimized_spec.describe()} "
                f"({failure.minimize_steps} steps)")
        if failure.regression_path:
            line += f" -> {failure.regression_path}"
        print(line)

    baseline = None
    if args.baseline_random:
        baseline = random_baseline(replace(
            config, overrides={}, emit_dir=None, minimize_failures=False))
        print(f"fuzz: random baseline reached {baseline.coverage_buckets} "
              f"buckets at equal budget "
              f"(guided {report.coverage_buckets})")

    if args.out:
        payload = {"report": report.to_dict()}
        if baseline is not None:
            payload["baseline"] = baseline.to_dict()
        Path(args.out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")

    ok = True
    if args.inject_bug:
        # Harness self-test mode: the injected bug MUST be caught, by
        # the oracle that owns that failure mode.
        expected = INJECTED_BUG_ORACLES[args.inject_bug]
        caught = [f for f in report.failures
                  if f.oracle.startswith(expected)]
        if not caught:
            print(f"fuzz: injected bug {args.inject_bug!r} was NOT caught",
                  file=sys.stderr)
            ok = False
        else:
            print(f"fuzz: injected bug {args.inject_bug!r} caught and "
                  f"minimized ({len(caught)} failure(s))")
    elif report.failures:
        ok = False
    if (args.min_new_buckets is not None
            and report.mutation_new_buckets < args.min_new_buckets):
        print(f"fuzz: only {report.mutation_new_buckets} new coverage "
              f"buckets post-seed (required {args.min_new_buckets})",
              file=sys.stderr)
        ok = False
    if baseline is not None and not (report.coverage_buckets
                                     > baseline.coverage_buckets):
        print("fuzz: guided coverage did not beat the random baseline",
              file=sys.stderr)
        ok = False
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.tools",
                                     description=__doc__)
    add_log_level_argument(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="record a workload execution")
    record.add_argument("--workload", choices=WORKLOAD_NAMES, default="fft")
    record.add_argument("--program", help="record a saved program.json "
                                          "instead of a named workload")
    record.add_argument("--cores", type=int, default=8)
    record.add_argument("--scale", type=float, default=0.5)
    record.add_argument("--seed", type=int, default=1)
    record.add_argument("--consistency", default="RC",
                        choices=[m.value for m in ConsistencyModel])
    record.add_argument("--protocol", default="snoopy",
                        choices=[p.value for p in CoherenceProtocol])
    record.add_argument("--variants", nargs="+", default=["opt_4096"],
                        help="e.g. opt_inf base_4096 opt_512")
    record.add_argument("--edges", action="store_true",
                        help="collect pairwise edges (enables parallel "
                             "replay; snoopy only)")
    record.add_argument("--out",
                        help="recording directory to write")
    record.add_argument("--result-out",
                        help="write the full serialized RunResult as JSON "
                             "(the repro.tools inspect input)")
    record.add_argument("--trace", action="store_true",
                        help="attach the structured trace bus")
    record.add_argument("--trace-out",
                        help="write Chrome trace-event JSON of the "
                             "recording (implies --trace)")
    record.add_argument("--metrics-out",
                        help="write the flat metrics snapshot as JSON")
    record.add_argument("--kernel", default="event", choices=sorted(KERNELS),
                        help="simulation kernel (both give identical "
                             "results; lockstep is the slow reference)")
    record.set_defaults(func=cmd_record)

    replay = sub.add_parser("replay", help="replay a stored recording")
    replay.add_argument("recording")
    replay.add_argument("--variant", action="append",
                        help="variant(s) to replay (default: all)")
    replay.add_argument("--parallel", action="store_true",
                        help="use the DAG-ordered parallel replayer "
                             "(requires --edges at record time)")
    replay.add_argument("--no-verify", action="store_true")
    replay.set_defaults(func=cmd_replay)

    sweep = sub.add_parser(
        "sweep", help="record a workload grid in parallel with caching")
    sweep.add_argument("--workloads", default="all",
                       help="comma-separated workloads (default: all)")
    sweep.add_argument("--cores", default="8",
                       help="comma-separated core counts (default: 8)")
    sweep.add_argument("--consistency", default="RC",
                       help="comma-separated models out of "
                            + ",".join(m.value for m in ConsistencyModel))
    sweep.add_argument("--with-baselines", action="store_true",
                       help="attach the SC/TSO baseline recorders")
    sweep.add_argument("--scale", type=float, default=0.5)
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: CPU count)")
    sweep.add_argument("--cache-dir", default=None,
                       help="result cache directory (default .repro_cache)")
    sweep.add_argument("--cache-backend", default=None, metavar="SPEC",
                       help="pluggable cache backend: dir:PATH, sqlite:PATH "
                            "or http://HOST:PORT (a running cache-serve "
                            "daemon); overrides --cache-dir")
    sweep.add_argument("--cache-url", default=None, metavar="URL",
                       help="shorthand for --cache-backend http://... "
                            "(remote cache daemon URL)")
    sweep.add_argument("--scheduler", default="static",
                       choices=("static", "stealing"),
                       help="shard scheduler: static pool or work-stealing "
                            "deque with in-flight leases deduping cells "
                            "across cooperating sweep processes")
    sweep.add_argument("--lease-ttl", type=float, default=30.0,
                       metavar="SECONDS",
                       help="in-flight lease TTL before peers may steal a "
                            "cell (stealing scheduler; default 30)")
    sweep.add_argument("--results-out", default=None,
                       help="write the serialized results keyed by shard "
                            "label (deterministic: byte-identical across "
                            "schedulers, backends and cache temperature)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="do not read or write the result cache")
    sweep.add_argument("--resume", action="store_true",
                       help="resume an interrupted sweep from cached shards "
                            "(on by default; rejects --no-cache)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-shard timeout in seconds")
    sweep.add_argument("--metrics-out", default=None,
                       help="write the sweep metrics snapshot as JSON")
    sweep.add_argument("--capture-trace", action="store_true",
                       help="workers keep a bounded trace ring buffer and "
                            "ship it back with their results")
    sweep.add_argument("--trace-capacity", type=int, default=4096,
                       help="per-worker trace ring capacity "
                            "(with --capture-trace)")
    sweep.add_argument("--trace-out", default=None,
                       help="write the merged worker traces as JSONL "
                            "(implies --capture-trace)")
    sweep.set_defaults(func=cmd_sweep)

    sweep_bench = sub.add_parser(
        "sweep-bench",
        help="benchmark the sweep fabric: static vs work-stealing on a "
             "straggler-skewed grid, two-scheduler lease dedupe, and warm "
             "remote-cache hit latency")
    sweep_bench.add_argument("--cells", type=int, default=64,
                             help="synthetic grid size (default 64)")
    sweep_bench.add_argument("--heavy", type=int, default=8,
                             help="straggler cells clustered at the grid "
                                  "front (default 8)")
    sweep_bench.add_argument("--heavy-ms", type=float, default=200.0,
                             help="straggler cell cost in ms (default 200)")
    sweep_bench.add_argument("--light-ms", type=float, default=10.0,
                             help="light cell cost in ms (default 10)")
    sweep_bench.add_argument("--jobs", type=int, default=8,
                             help="worker processes (default 8)")
    sweep_bench.add_argument("--warm-lookups", type=int, default=50,
                             help="single-key warm-hit samples against the "
                                  "cache daemon (default 50)")
    sweep_bench.add_argument("--out", default=None,
                             help="write the JSON report")
    sweep_bench.add_argument("--history", default="BENCH_history.jsonl",
                             help="append-only JSONL perf history "
                                  "(default: BENCH_history.jsonl)")
    sweep_bench.add_argument("--no-history", action="store_true",
                             help="do not append this run to the history")
    sweep_bench.add_argument("--min-speedup", type=float, default=None,
                             help="exit non-zero if stealing beats the "
                                  "static split by less than this factor")
    sweep_bench.set_defaults(func=cmd_sweep_bench)

    cache_serve = sub.add_parser(
        "cache-serve",
        help="serve a shared sweep result cache over HTTP (point sweeps "
             "at it with --cache-url)")
    cache_serve.add_argument("--host", default="127.0.0.1")
    cache_serve.add_argument("--port", type=int, default=8123)
    cache_serve.add_argument("--store", default=None,
                             help="backing store: a SQLite path (durable) "
                                  "or omitted for in-memory")
    cache_serve.set_defaults(func=cmd_cache_serve)

    bench = sub.add_parser(
        "bench", help="time every kernel against the lockstep reference "
                      "and check they agree byte-for-byte")
    bench.add_argument("--workloads", default="fft",
                       help="comma-separated workloads (default: fft)")
    bench.add_argument("--cores", type=int, default=16)
    bench.add_argument("--scale", type=float, default=0.5)
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--consistency", default="RC",
                       choices=[m.value for m in ConsistencyModel])
    bench.add_argument("--l1-kb", type=int, default=4,
                       help="L1 size in KiB (small => miss-heavy)")
    bench.add_argument("--l1-assoc", type=int, default=2)
    bench.add_argument("--mshr", type=int, default=2,
                       help="L1 MSHR entries (few => long stalls)")
    bench.add_argument("--mem-cycles", type=int, default=400,
                       help="memory roundtrip latency in cycles")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timing repeats; best wall time is reported")
    bench.add_argument("--out", default=None,
                       help="write the JSON report (e.g. BENCH_kernel.json)")
    bench.add_argument("--min-speedup", type=float, default=None,
                       help="exit non-zero if the event kernel speedup "
                            "falls below this factor")
    bench.add_argument("--min-compiled-speedup", type=float, default=None,
                       help="exit non-zero if the compiled kernel speedup "
                            "falls below this factor")
    bench.add_argument("--history", default="BENCH_history.jsonl",
                       help="append-only JSONL perf history "
                            "(default: BENCH_history.jsonl)")
    bench.add_argument("--no-history", action="store_true",
                       help="do not append this run to the perf history")
    bench.set_defaults(func=cmd_bench)

    profile = sub.add_parser(
        "profile", help="attribute simulated cycles and host time of a run")
    profile.add_argument("--workload", choices=WORKLOAD_NAMES, default="fft")
    profile.add_argument("--cores", type=int, default=16)
    profile.add_argument("--scale", type=float, default=0.5)
    profile.add_argument("--seed", type=int, default=1)
    profile.add_argument("--consistency", default="RC",
                         choices=[m.value for m in ConsistencyModel])
    profile.add_argument("--kernel", default="event",
                         choices=sorted(KERNELS))
    profile.add_argument("--out", default=None,
                         help="write the hierarchical profile as JSON")
    profile.add_argument("--chrome-out", default=None,
                         help="write a Chrome trace-event rendering")
    profile.set_defaults(func=cmd_profile)

    perf_report = sub.add_parser(
        "perf-report",
        help="regression-check the bench history against a rolling baseline")
    perf_report.add_argument("--history", default="BENCH_history.jsonl")
    perf_report.add_argument("--tolerance", type=float, default=None,
                             help="relative drop tolerated vs the rolling "
                                  "baseline (default 0.25)")
    perf_report.add_argument("--window", type=int, default=None,
                             help="rolling-baseline depth in records "
                                  "(default 5)")
    perf_report.add_argument("--floor-speedup", type=float, default=None,
                             help="absolute event-kernel speedup floor "
                                  "enforced even without history")
    perf_report.add_argument("--floor-compiled-speedup", type=float,
                             default=None,
                             help="absolute compiled-kernel speedup floor "
                                  "enforced even without history")
    perf_report.set_defaults(func=cmd_perf_report)

    inspect = sub.add_parser(
        "inspect",
        help="summarize a recording or run time-travel replay queries")
    inspect.add_argument("recording",
                         help="recording directory or serialized RunResult "
                              "JSON (record --result-out)")
    inspect.add_argument("--verbose", "-v", action="store_true")
    inspect.add_argument("--analyze", "-a", action="store_true",
                         help="print log profiles and interval timelines "
                              "(directory summaries only)")
    inspect.add_argument("--variant", default=None,
                         help="recorder variant to inspect (default: first)")
    inspect.add_argument("--checkpoint-every", type=int, default=8,
                         metavar="N",
                         help="replay-checkpoint cadence in chunks "
                              "(default 8)")
    inspect.add_argument("--json", action="store_true",
                         help="emit one sorted JSON object instead of "
                              "tables")
    inspect.add_argument("--state-at", metavar="CORE:CISN",
                         help="machine state right after a chunk committed")
    inspect.add_argument("--first-write", metavar="ADDR",
                         help="first chunk that wrote an address")
    inspect.add_argument("--last-write", metavar="ADDR",
                         help="last chunk that wrote an address")
    inspect.add_argument("--who-read", metavar="ADDR[=VALUE]",
                         help="every read of an address (optionally only "
                              "reads that observed VALUE)")
    inspect.add_argument("--timeline", type=int, metavar="CORE",
                         help="one core's per-chunk interval timeline")
    inspect.add_argument("--hb-slice", metavar="CORE:CISN",
                         help="a chunk's happens-before causal cone")
    inspect.add_argument("--hb-depth", type=int, default=None,
                         help="bound the --hb-slice BFS to N hops")
    inspect.set_defaults(func=cmd_inspect)

    fuzz = sub.add_parser(
        "fuzz",
        help="coverage-guided fuzzing of the recorder via differential "
             "oracles")
    fuzz.add_argument("--budget", default="100", metavar="N|Ns",
                      help="candidate evaluations (deterministic), or wall "
                           "seconds with an 's' suffix, e.g. 60s "
                           "(default 100)")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--jobs", type=int, default=1,
                      help="worker processes (any width gives identical "
                           "results under a count budget)")
    fuzz.add_argument("--batch", type=int, default=None,
                      help="candidates per generation (default max(4, jobs))")
    fuzz.add_argument("--corpus-dir",
                      help="extra corpus directory to seed from")
    fuzz.add_argument("--emit-regressions", metavar="DIR",
                      help="write minimized failures as ready-to-commit "
                           "regression entries + forensics bundles")
    fuzz.add_argument("--inject-bug", choices=sorted(INJECTED_BUGS),
                      help="re-introduce a known-bad recorder config; exit 0 "
                           "iff the fuzzer catches it (harness self-test)")
    fuzz.add_argument("--max-failures", type=int, default=5,
                      help="stop minimizing/emitting past this many failures")
    fuzz.add_argument("--min-new-buckets", type=int, default=None,
                      help="fail unless at least N coverage buckets were "
                           "first reached after the seed batch")
    fuzz.add_argument("--baseline-random", action="store_true",
                      help="also run the pure-random control at equal "
                           "budget; fail unless guided coverage beats it")
    fuzz.add_argument("--out",
                      help="write the session report (and baseline, if any) "
                           "as JSON")
    fuzz.set_defaults(func=cmd_fuzz)

    args = parser.parse_args(argv)
    setup_logging(args.log_level)
    logger = logging.getLogger("repro.tools")
    try:
        return args.func(args)
    except ReplayDivergenceError as error:
        report = getattr(error, "report", None)
        print(report.render() if report is not None else str(error),
              file=sys.stderr)
        logger.debug("replay divergence", exc_info=True)
        return 1
    except (OSError, json.JSONDecodeError, LogFormatError, ConfigError,
            WorkloadError, FuzzError, KeyError, ValueError) as error:
        message = (error.args[0] if error.args and
                   isinstance(error.args[0], str) else str(error))
        print(f"error: {message}", file=sys.stderr)
        logger.debug("command failed", exc_info=True)
        return 2


if __name__ == "__main__":
    sys.exit(main())
