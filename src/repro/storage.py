"""On-disk persistence for programs and recordings.

A recording saved with :func:`save_recording` is a directory:

.. code-block:: text

    <dir>/
      manifest.json          # format version, config, per-variant metadata,
                             # verification state (final registers, memory,
                             # per-core instruction counts), run statistics
      program.json           # the recorded program, instruction by instruction
      logs/<variant>/core<i>.bin   # the bit-exact interval logs
      edges/<variant>.json   # pairwise interval edges (when collected)

The interval logs are stored in the recorder's binary format
(:mod:`repro.recorder.logfmt`), so the on-disk size *is* the hardware log
size.  :func:`load_recording` reconstructs everything needed to replay —
including the verification state, so a replay of a loaded recording is
checked bit-exactly against the original execution even in a fresh process.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from .common.config import (
    CoherenceProtocol,
    ConsistencyModel,
    CoreConfig,
    L1Config,
    L2Config,
    MachineConfig,
    MemoryConfig,
    RecorderConfig,
    RecorderMode,
    ReplayCostConfig,
    RingConfig,
)
from .common.errors import LogFormatError
from .isa.instructions import AluOp, Instruction, Opcode, RmwOp
from .isa.program import Program, ThreadProgram
from .recorder.logfmt import decode_log, encode_log
from .recorder.ordering import IntervalEdge
from .replay.costmodel import estimate_replay_time
from .replay.replayer import ReplayResult, Replayer, _verify_memory
from .sim.machine import RunResult

__all__ = ["save_program", "load_program", "save_recording",
           "load_recording", "StoredRecording", "FORMAT_VERSION",
           "config_to_dict", "config_from_dict",
           "program_to_dict", "program_from_dict"]

FORMAT_VERSION = 1

_ENUMS = {"opcode": Opcode, "alu_op": AluOp, "rmw_op": RmwOp}


# ------------------------------------------------------------- programs

def _instruction_to_dict(instr: Instruction) -> dict:
    out: dict = {"op": instr.opcode.value}
    for name in ("dst", "src1", "src2", "imm", "addr_base", "target"):
        value = getattr(instr, name)
        if value is not None:
            out[name] = value
    if instr.addr_offset:
        out["off"] = instr.addr_offset
    if instr.alu_op is not None:
        out["alu"] = instr.alu_op.value
    if instr.rmw_op is not None:
        out["rmw"] = instr.rmw_op.value
    if instr.acquire:
        out["acq"] = True
    if instr.release:
        out["rel"] = True
    if instr.note:
        out["note"] = instr.note
    return out


def _instruction_from_dict(data: dict) -> Instruction:
    return Instruction(
        opcode=Opcode(data["op"]),
        dst=data.get("dst"),
        src1=data.get("src1"),
        src2=data.get("src2"),
        imm=data.get("imm"),
        addr_base=data.get("addr_base"),
        addr_offset=data.get("off", 0),
        target=data.get("target"),
        alu_op=AluOp(data["alu"]) if "alu" in data else None,
        rmw_op=RmwOp(data["rmw"]) if "rmw" in data else None,
        acquire=data.get("acq", False),
        release=data.get("rel", False),
        note=data.get("note", ""),
    )


def program_to_dict(program: Program) -> dict:
    """JSON-able dict of a program (instruction-by-instruction)."""
    return {
        "name": program.name,
        "metadata": program.metadata,
        "initial_memory": {str(addr): value for addr, value
                           in program.initial_memory.items()},
        "threads": [
            {"name": thread.name,
             "instructions": [_instruction_to_dict(instr)
                              for instr in thread.instructions]}
            for thread in program.threads
        ],
    }


def program_from_dict(data: dict) -> Program:
    """Rebuild (and validate) a program written by :func:`program_to_dict`."""
    threads = [
        ThreadProgram([_instruction_from_dict(entry)
                       for entry in thread["instructions"]],
                      name=thread.get("name", ""))
        for thread in data["threads"]
    ]
    return Program(
        threads,
        initial_memory={int(addr): value for addr, value
                        in data.get("initial_memory", {}).items()},
        name=data.get("name", "program"),
        metadata=data.get("metadata", {}),
    ).validate()


def save_program(program: Program, path: str | Path) -> Path:
    """Write a program to ``path`` as JSON (see ``program_to_dict``)."""
    path = Path(path)
    path.write_text(json.dumps(program_to_dict(program)))
    return path


def load_program(path: str | Path) -> Program:
    """Load a program saved by :func:`save_program`."""
    return program_from_dict(json.loads(Path(path).read_text()))


# --------------------------------------------------------------- config

def _config_to_dict(config) -> dict:
    out = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if dataclasses.is_dataclass(value):
            out[field.name] = _config_to_dict(value)
        elif isinstance(value, (ConsistencyModel, RecorderMode,
                                CoherenceProtocol)):
            out[field.name] = value.value
        else:
            out[field.name] = value
    return out


_NESTED = {"core": CoreConfig, "l1": L1Config, "l2": L2Config,
           "ring": RingConfig, "memory": MemoryConfig,
           "recorder": RecorderConfig, "replay_cost": ReplayCostConfig}
_ENUM_FIELDS = {"consistency": ConsistencyModel, "protocol": CoherenceProtocol,
                "mode": RecorderMode}


def _config_from_dict(cls, data: dict):
    kwargs = {}
    for field in dataclasses.fields(cls):
        if field.name not in data:
            continue
        value = data[field.name]
        if field.name in _NESTED and isinstance(value, dict):
            value = _config_from_dict(_NESTED[field.name], value)
        elif field.name in _ENUM_FIELDS and isinstance(value, str):
            value = _ENUM_FIELDS[field.name](value)
        kwargs[field.name] = value
    return cls(**kwargs)


def config_to_dict(config) -> dict:
    """JSON-able dict of any config dataclass (enums by value)."""
    return _config_to_dict(config)


def config_from_dict(cls, data: dict):
    """Rebuild a config dataclass written by :func:`config_to_dict`."""
    return _config_from_dict(cls, data)


# ------------------------------------------------------------ recordings

def save_recording(result: RunResult, path: str | Path) -> Path:
    """Persist a :class:`~repro.sim.machine.RunResult` to ``path``."""
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    save_program(result.program, root / "program.json")

    variants = {}
    for name, outputs in result.recordings.items():
        variant_dir = root / "logs" / name
        variant_dir.mkdir(parents=True, exist_ok=True)
        cores = []
        for output in outputs:
            data, bits = encode_log(output.entries, output.config)
            log_path = variant_dir / f"core{output.core_id}.bin"
            log_path.write_bytes(data)
            cores.append({"core_id": output.core_id, "bit_length": bits})
        variants[name] = {
            "recorder_config": _config_to_dict(outputs[0].config),
            "cores": cores,
        }

    edges_meta = {}
    for name, edges in result.dependence_edges.items():
        edges_dir = root / "edges"
        edges_dir.mkdir(exist_ok=True)
        (edges_dir / f"{name}.json").write_text(json.dumps(
            [[e.src_core, e.src_cisn, e.dst_core, e.dst_cisn]
             for e in edges]))
        edges_meta[name] = len(edges)

    manifest = {
        "format_version": FORMAT_VERSION,
        "config": _config_to_dict(result.config),
        "cycles": result.cycles,
        "bus_transactions": result.bus_transactions,
        "variants": variants,
        "edges": edges_meta,
        "verification": {
            "final_memory": {str(addr): value for addr, value
                             in result.final_memory.items()},
            "cores": [
                {"core_id": core.core_id,
                 "instructions": core.instructions,
                 "final_regs": core.final_regs}
                for core in result.cores
            ],
        },
    }
    (root / "manifest.json").write_text(json.dumps(manifest))
    return root


class StoredRecording:
    """A recording loaded from disk; replayable and self-verifying."""

    def __init__(self, root: Path, manifest: dict, program: Program):
        self.root = root
        self.manifest = manifest
        self.program = program
        self.config = _config_from_dict(MachineConfig, manifest["config"])
        self.cycles = manifest["cycles"]
        self.final_memory = {int(addr): value for addr, value in
                             manifest["verification"]["final_memory"].items()}
        self.core_facts = manifest["verification"]["cores"]

    @property
    def variants(self) -> tuple[str, ...]:
        return tuple(self.manifest["variants"])

    def log_entries(self, variant: str) -> list[list]:
        try:
            meta = self.manifest["variants"][variant]
        except KeyError:
            raise LogFormatError(
                f"recording has no variant {variant!r}; available: "
                f"{', '.join(self.variants)}")
        recorder_config = _config_from_dict(RecorderConfig,
                                            meta["recorder_config"])
        per_core = []
        for core in sorted(meta["cores"], key=lambda c: c["core_id"]):
            data = (self.root / "logs" / variant /
                    f"core{core['core_id']}.bin").read_bytes()
            per_core.append(decode_log(data, core["bit_length"],
                                       recorder_config))
        return per_core

    def edges(self, variant: str) -> list[IntervalEdge]:
        path = self.root / "edges" / f"{variant}.json"
        if not path.exists():
            return []
        return [IntervalEdge(*row) for row in json.loads(path.read_text())]

    def log_bits(self, variant: str) -> int:
        meta = self.manifest["variants"][variant]
        return sum(core["bit_length"] for core in meta["cores"])

    def inspector(self, variant: str | None = None, *,
                  checkpoint_every: int = 8):
        """Time-travel :class:`~repro.obs.inspect.ReplayInspector` over one
        stored variant (default: the first)."""
        from .obs.inspect import ReplayInspector

        return ReplayInspector.from_stored(
            self, variant, checkpoint_every=checkpoint_every)

    def replay(self, variant: str, *, verify: bool = True) -> ReplayResult:
        """Replay a stored variant, verifying against the stored execution."""
        meta = self.manifest["variants"][variant]
        recorder_config = _config_from_dict(RecorderConfig,
                                            meta["recorder_config"])
        replayer = Replayer(self.program, self.log_entries(variant),
                            cisn_bits=recorder_config.cisn_bits,
                            variant=variant)
        memory, contexts, counts = replayer.replay()
        if verify:
            _verify_memory(memory, self.final_memory, variant)
            for context, facts in zip(contexts, self.core_facts):
                if context.instructions_executed != facts["instructions"]:
                    raise LogFormatError(
                        f"[{variant}] core {facts['core_id']}: replayed "
                        f"{context.instructions_executed} instructions, "
                        f"manifest says {facts['instructions']}")
                if context.regs != facts["final_regs"]:
                    raise LogFormatError(
                        f"[{variant}] core {facts['core_id']}: final "
                        f"registers diverge from the stored execution")
        total = sum(facts["instructions"] for facts in self.core_facts)
        recorded_cpi = (self.cycles * len(self.core_facts) / total
                        if total else 1.0)
        time = estimate_replay_time(counts, self.config.replay_cost,
                                    recorded_cpi=recorded_cpi)
        return ReplayResult(
            variant=variant, counts=counts, time=time,
            final_memory={a: v for a, v in memory.items() if v},
            final_regs=[list(c.regs) for c in contexts],
            verified=verify)


def load_recording(path: str | Path) -> StoredRecording:
    """Open a recording directory written by :func:`save_recording`."""
    root = Path(path)
    manifest = json.loads((root / "manifest.json").read_text())
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise LogFormatError(
            f"unsupported recording format version {version!r} "
            f"(this build reads {FORMAT_VERSION})")
    program = load_program(root / "program.json")
    return StoredRecording(root, manifest, program)
