"""RelaxReplay: record and deterministic replay for relaxed-consistency
multiprocessors — a full-system Python reproduction of Honarmand &
Torrellas, ASPLOS 2014.

The package implements the paper's memory race recorder (RelaxReplay_Base
and RelaxReplay_Opt) together with every substrate its evaluation needs: a
cycle-approximate out-of-order multicore simulator with MESI snoopy
coherence over a ring, SC/TSO/RC consistency policies, SPLASH-2-like
workloads, baseline recorders, a verifying deterministic replayer, and an
experiment harness that regenerates every figure of the paper's Section 5.

Quick start::

    from repro import (MachineConfig, Machine, RecorderConfig, RecorderMode,
                       build_workload, replay_recording)

    program = build_workload("fft", num_threads=8)
    machine = Machine(MachineConfig(), {
        "opt": RecorderConfig(mode=RecorderMode.OPT),
    })
    recording = machine.run(program)
    replay = replay_recording(recording, "opt")   # verifies determinism
    print(recording.recording_stats("opt").bits_per_kilo_instruction())
"""

from .common.config import (
    CoherenceProtocol,
    ConsistencyModel,
    CoreConfig,
    L1Config,
    L2Config,
    MachineConfig,
    MemoryConfig,
    RecorderConfig,
    RecorderMode,
    ReplayCostConfig,
    RingConfig,
)
from .common.errors import (
    ConfigError,
    LogFormatError,
    ReplayDivergenceError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from .isa import Program, ThreadBuilder, ThreadProgram
from .obs import (
    DivergenceReport,
    MetricsRegistry,
    MetricsSnapshot,
    Tracer,
    export_chrome_trace,
    export_jsonl,
)
from .replay import (
    ParallelReplayResult,
    ReplayResult,
    parallel_replay_recording,
    replay_recording,
)
from .sim import Machine, RunResult
from .storage import load_program, load_recording, save_program, save_recording
from .workloads import WORKLOAD_NAMES, build_workload, random_program

__version__ = "1.0.0"

__all__ = [
    "CoherenceProtocol",
    "ConsistencyModel",
    "CoreConfig",
    "L1Config",
    "L2Config",
    "MachineConfig",
    "MemoryConfig",
    "RecorderConfig",
    "RecorderMode",
    "ReplayCostConfig",
    "RingConfig",
    "ConfigError",
    "LogFormatError",
    "ReplayDivergenceError",
    "ReproError",
    "SimulationError",
    "WorkloadError",
    "Program",
    "ThreadBuilder",
    "ThreadProgram",
    "Tracer",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DivergenceReport",
    "export_jsonl",
    "export_chrome_trace",
    "ParallelReplayResult",
    "ReplayResult",
    "parallel_replay_recording",
    "replay_recording",
    "Machine",
    "RunResult",
    "load_program",
    "load_recording",
    "save_program",
    "save_recording",
    "WORKLOAD_NAMES",
    "build_workload",
    "random_program",
    "__version__",
]
