"""Memory-consistency issue policies (SC, TSO, RC).

The policy decides *when a memory access may be exposed to the coherence
subsystem*; everything else about the core is model-independent.  The rules
implemented here are deliberately the textbook hardware interpretations:

``SC``
    An access issues only when it is the oldest unperformed memory access of
    its core — memory operations reach coherence in program order.  No
    store-to-load forwarding (the older store has always performed first).

``TSO``
    Loads issue in program order with respect to other loads, and may bypass
    older pending stores; a load to the address of a pending store must take
    the store's value (forwarding).  Stores drain from the write buffer in
    FIFO order, one outstanding store at a time.

``RC``
    Loads and stores issue whenever their operands are ready, subject only
    to: same-address program order, acquire/fence barriers (nothing younger
    issues until the barrier completes), release semantics (a release store
    or RMW waits for all older accesses to perform), and conservative
    disambiguation (a load waits until all older store addresses are known).

All three policies additionally respect FENCE/acquire barriers; under SC and
TSO the barriers are usually subsumed by the base ordering rules.
"""

from __future__ import annotations

from ..common.config import ConsistencyModel
from .dynops import DynInstr

__all__ = ["IssuePolicy"]


class IssuePolicy:
    """Model-dependent issue predicates, evaluated against core state.

    The core exposes three ordering oracles, kept incrementally:

    * ``oldest_unperformed_mem_seq()`` — seq of the oldest memory access not
      yet performed (or a sentinel larger than any seq);
    * ``oldest_unperformed_load_seq()`` / ``oldest_unperformed_store_seq()``
      — same, restricted to load-like / store-like accesses;
    * ``has_barrier_older_than(seq)`` — an uncleared acquire/fence/RMW older
      than ``seq`` exists.
    """

    def __init__(self, model: ConsistencyModel, core):
        self.model = model
        self.core = core

    # ----------------------------------------------------------- loads

    def may_issue_load(self, dyn: DynInstr) -> bool:
        """May this load (plain or acquire) be issued/forwarded now?"""
        core = self.core
        if core.has_barrier_older_than(dyn.seq):
            return False
        if self.model is ConsistencyModel.SC:
            return core.oldest_unperformed_mem_seq() >= dyn.seq
        if self.model is ConsistencyModel.TSO:
            return core.oldest_unperformed_load_seq() >= dyn.seq
        return True  # RC

    def allows_forwarding(self) -> bool:
        """Store-to-load forwarding is meaningful only when loads may bypass
        pending stores, i.e. under TSO and RC."""
        return self.model is not ConsistencyModel.SC

    # ---------------------------------------------------------- stores

    def may_issue_store(self, dyn: DynInstr) -> bool:
        """May this retired, write-buffered store merge with memory now?

        Barriers need no re-check here: in-order retirement guarantees that
        every older acquire/fence/RMW completed before this store entered
        the write buffer.
        """
        core = self.core
        if self.model is ConsistencyModel.SC:
            return core.oldest_unperformed_mem_seq() >= dyn.seq
        if self.model is ConsistencyModel.TSO:
            return core.oldest_unperformed_store_seq() >= dyn.seq
        # RC: same-word FIFO within the write buffer; release stores wait
        # for all older stores (older loads performed before retirement).
        if dyn.instr.release:
            return core.oldest_unperformed_store_seq() >= dyn.seq
        return not core.has_older_unperformed_store_to(dyn)

    # ------------------------------------------------------------ RMWs

    def may_issue_rmw(self, dyn: DynInstr) -> bool:
        """RMWs carry acquire+release semantics under every model: they wait
        for all older accesses and (as registered barriers) block younger
        ones until they perform."""
        core = self.core
        if core.has_barrier_older_than(dyn.seq):
            return False
        return core.oldest_unperformed_mem_seq() >= dyn.seq
