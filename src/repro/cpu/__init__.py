"""Out-of-order core model with pluggable consistency policies."""

from .consistency import IssuePolicy
from .core import Core, CoreEventSink
from .dynops import DynInstr

__all__ = ["IssuePolicy", "Core", "CoreEventSink", "DynInstr"]
