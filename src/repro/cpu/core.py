"""The out-of-order core model.

One :class:`Core` executes one :class:`~repro.isa.program.ThreadProgram`.
The model is cycle-stepped and eager-dataflow (see ``dynops``): fetch and
dispatch are in program order (dispatch stalls at an unresolved branch, so
there is no wrong-path execution); memory accesses issue out of order under
the configured consistency policy; retirement is in order; and the TRAQ
performs the paper's in-order *counting* step after retirement.

The core emits the exact event stream the paper's MRR module consumes
(Figure 6(a)): memory-instruction dispatch (TRAQ allocation), perform
events, counting events, and — via the bus — observed coherence
transactions.  Recorder variants and metric collectors subscribe as sinks.
"""

from __future__ import annotations

from collections import deque
from typing import Protocol

from ..common.config import ConsistencyModel, MachineConfig
from ..common.errors import SimulationError
from ..isa.instructions import NUM_REGS, Opcode
from ..isa.program import ThreadProgram
from ..isa.semantics import eval_alu
from ..mem.memsys import MemOp, MemOpKind, MemorySystem
from ..obs.events import (InstrCountEvent, InstrPerformEvent,
                          WriteBufferDrainEvent)
from ..recorder.traq import TraqEntry, TrackingQueue
from .consistency import IssuePolicy
from .dynops import DynInstr

__all__ = ["CoreEventSink", "Core"]

_INF_SEQ = 1 << 62


class CoreEventSink(Protocol):
    """Receiver of a core's instruction events (recorders, metrics)."""

    def on_perform(self, dyn: DynInstr, cycle: int, out_of_order: bool) -> None:
        """A memory access reached its coherence-order point."""

    def on_count(self, entry: TraqEntry, cycle: int) -> None:
        """A TRAQ entry was counted (in program order)."""


class Core:
    """A single out-of-order core wired to the shared memory system."""

    def __init__(self, core_id: int, program: ThreadProgram,
                 config: MachineConfig, memsys: MemorySystem,
                 traq: TrackingQueue):
        self.core_id = core_id
        self.program = program
        self.config = config
        self.memsys = memsys
        self.traq = traq
        self.policy = IssuePolicy(config.consistency, self)
        self.sinks: list[CoreEventSink] = []
        # Optional structured trace bus (repro.obs); None keeps every hook
        # down to a single attribute load + identity check.
        self.tracer = None
        # Set by the kernel: schedules a cycle at which this core must be
        # stepped again (the event-driven kernel skips it in between; the
        # lockstep kernel only uses the wakes to fast-forward globally idle
        # stretches).
        self.schedule_wake = lambda cycle: None
        # Config constants hoisted out of the per-cycle paths.
        self._issue_width = config.core.issue_width
        self._rob_entries = config.core.rob_entries
        self._lsq_entries = config.core.lsq_entries
        self._wb_entries = config.core.write_buffer_entries
        self._ldst_units = config.core.ldst_units
        self._alu_latency = config.core.alu_latency
        self._fifo_write_buffer = config.consistency is not ConsistencyModel.RC

        # Fetch / dispatch state.
        self.pc = 0
        self.next_seq = 0
        self.halted = False            # HALT dispatched; fetch stopped
        self.halt_retired = False
        self.stalled_branch: DynInstr | None = None
        self.pending_nmi = 0           # non-memory instrs since last memory op

        # Rename/dataflow state.
        self.rename: list[DynInstr | None] = [None] * NUM_REGS
        self.spec_regs = [0] * NUM_REGS
        self.arch_regs = [0] * NUM_REGS

        # Structures.
        self.rob: deque[DynInstr] = deque()
        self.write_buffer: deque[DynInstr] = deque()
        self.lsq_occupancy = 0

        # Ordering oracles (program-ordered; fronts popped lazily).
        self._unperformed_mem: deque[DynInstr] = deque()
        self._unperformed_loads: deque[DynInstr] = deque()
        self._unperformed_stores: deque[DynInstr] = deque()
        self._unresolved_stores: deque[DynInstr] = deque()
        self._barriers: deque[DynInstr] = deque()
        # Same-word dependency index: byte address -> unperformed accesses
        # with that resolved address.  Entries are added when an address
        # resolves and removed when the access performs, so buckets stay
        # bounded by the in-flight window (dependency and disambiguation
        # queries used to scan the whole unperformed deques per issue
        # attempt, which dominated profiles).
        self._same_word: dict[int, list[DynInstr]] = {}

        # Issue scheduling.  Entries are stamped with their admission order
        # (``DynInstr.admit_order``) as they enter the pending queue, so a
        # kernel that partitions the queue can restore the exact order.
        self._pending_issue: deque[DynInstr] = deque()
        self._waiting_disambiguation: list[DynInstr] = []
        self._admit_counter = 0

        self.retired_seq = -1
        self.now = 0

        # Issue-state version: bumped whenever something happens that could
        # turn a previously blocked memory issue (write-buffer drain or
        # pending load/RMW) into an issuable one — a perform (frees MSHRs,
        # clears barriers and dependencies, advances the ordering oracles),
        # an address resolution (new pending entrant, forwarding source,
        # disambiguation promotion) or a store entering the write buffer.
        # The generic kernels never read it; the compiled backend
        # (repro.sim.compiled) memoizes fruitless issue scans on it.
        # ``unpark_version`` counts only the performs driven by a bus
        # commit (perform_cycle > now, i.e. fills of this core's own
        # transactions) — the sole events that can free MSHRs or add
        # coherence permissions, and therefore un-doom an access the
        # memory system rejected outright.  Hits and forwards never move
        # it, so the compiled backend re-examines its parked accesses only
        # when one of this core's misses completes.
        self.issue_version = 0
        self.unpark_version = 0

        # Statistics.
        self.instructions_retired = 0
        self.mem_retired = 0
        self.loads_performed = 0
        self.stores_performed = 0
        self.rmws_performed = 0
        self.ooo_loads = 0
        self.ooo_stores = 0
        self.forwarded_loads = 0
        self.dispatch_stall_traq = 0
        self.finish_cycle: int | None = None

    # ------------------------------------------------------------ oracles

    def oldest_unperformed_mem_seq(self) -> int:
        queue = self._unperformed_mem
        while queue and queue[0].performed:
            queue.popleft()
        return queue[0].seq if queue else _INF_SEQ

    def oldest_unperformed_load_seq(self) -> int:
        queue = self._unperformed_loads
        while queue and queue[0].performed:
            queue.popleft()
        return queue[0].seq if queue else _INF_SEQ

    def oldest_unperformed_store_seq(self) -> int:
        queue = self._unperformed_stores
        while queue and queue[0].performed:
            queue.popleft()
        return queue[0].seq if queue else _INF_SEQ

    def _oldest_unresolved_store_seq(self) -> int:
        queue = self._unresolved_stores
        while queue and queue[0].addr_ready:
            queue.popleft()
        return queue[0].seq if queue else _INF_SEQ

    def has_barrier_older_than(self, seq: int) -> bool:
        queue = self._barriers
        while queue and self._barrier_cleared(queue[0]):
            queue.popleft()
        return bool(queue) and queue[0].seq < seq

    def _barrier_cleared(self, dyn: DynInstr) -> bool:
        if dyn.opcode is Opcode.FENCE:
            # A fence clears when every older access performed.  The oracle
            # may momentarily point at an access younger than the fence, in
            # which case everything older has performed.
            return self.oldest_unperformed_mem_seq() > dyn.seq
        return dyn.performed  # acquire load or RMW

    def has_older_unperformed_store_to(self, dyn: DynInstr) -> bool:
        seq = dyn.seq
        for other in self._same_word.get(dyn.addr, ()):
            if other.seq < seq and other.is_store_like:
                return True
        return False

    # ------------------------------------------------------------- status

    @property
    def done(self) -> bool:
        return (self.halt_retired and not self.rob and self.traq.is_empty
                and self.oldest_unperformed_store_seq() == _INF_SEQ)

    def stall_reason(self, cycle: int) -> str:
        """Classify why this core made no pipeline progress at ``cycle``.

        Consulted only by the cycle-attribution profiler
        (:mod:`repro.obs.profiler`) after a no-progress ``step``; it must
        stay strictly read-only so attaching a profiler cannot perturb
        the simulated architecture.  TRAQ-full stalls never reach here —
        the kernel attributes those from the dispatch-stall-counter delta
        (which also covers the event kernel's skipped-cycle back-fill).
        """
        if self.done:
            return "done"
        pending_bus = self.memsys.bus.pending_count(self.core_id)
        if pending_bus:
            if (pending_bus >= self.config.l1.mshr_entries
                    and (self._pending_issue
                         or any(not dyn.issued and not dyn.performed
                                for dyn in self.write_buffer))):
                return "mshr_full"
            return "bus_wait"
        branch = self.stalled_branch
        if branch is not None and (not branch.branch_resolved
                                   or branch.ready_cycle > cycle):
            return "branch"
        rob = self.rob
        if rob:
            head = rob[0]
            opcode = head.opcode
            if head.is_memory:
                if head.performed:
                    return ("mem_latency" if head.value_ready_cycle > cycle
                            else "pipeline")
                if not head.addr_ready:
                    return "exec_latency"
                if (opcode is Opcode.STORE
                        and len(self.write_buffer) >= self._wb_entries):
                    return "wb_full"
                # Address known, no bus traffic outstanding: the access is
                # held back by the consistency policy, disambiguation or
                # an unmerged older same-word access.
                return "ordering"
            if opcode is Opcode.FENCE:
                return "fence"
            if opcode in (Opcode.ALU, Opcode.MOVI, Opcode.BEQZ, Opcode.BNEZ):
                return "exec_latency"
            return "pipeline"
        if self.halted:
            # HALT retired (or dispatched) with empty ROB: draining the
            # write buffer / TRAQ tail.
            return "drain"
        return "frontend"

    # -------------------------------------------------------------- step

    def step(self, cycle: int) -> bool:
        """Advance one cycle; returns True if any pipeline activity occurred."""
        self.now = cycle
        progress = False
        progress |= self._retire(cycle) > 0
        progress |= self._count(cycle) > 0
        progress |= self._issue_memory(cycle) > 0
        progress |= self._dispatch(cycle) > 0
        return progress

    # ------------------------------------------------------------- retire

    def _retire(self, cycle: int) -> int:
        retired = 0
        width = self._issue_width
        while retired < width and self.rob:
            dyn = self.rob[0]
            if not self._can_retire(dyn, cycle):
                break
            self.rob.popleft()
            if dyn.opcode is Opcode.STORE:
                dyn.in_write_buffer = True
                self.write_buffer.append(dyn)
                self.issue_version += 1
            dyn.retired = True
            dyn.retire_cycle = cycle
            self.retired_seq = dyn.seq
            destination = dyn.dest
            if destination is not None:
                self.arch_regs[destination] = self._retired_value(dyn)
            if dyn.is_memory:
                self.lsq_occupancy -= 1
                self.mem_retired += 1
            if dyn.opcode is Opcode.HALT:
                self.halt_retired = True
            self.instructions_retired += 1
            retired += 1
        return retired

    def _can_retire(self, dyn: DynInstr, cycle: int) -> bool:
        opcode = dyn.opcode
        if opcode in (Opcode.NOP, Opcode.JUMP, Opcode.HALT):
            return True
        if opcode in (Opcode.ALU, Opcode.MOVI):
            return dyn.completed and dyn.ready_cycle <= cycle
        if opcode in (Opcode.BEQZ, Opcode.BNEZ):
            return dyn.branch_resolved and dyn.ready_cycle <= cycle
        if opcode is Opcode.FENCE:
            return self.oldest_unperformed_mem_seq() > dyn.seq
        if opcode is Opcode.STORE:
            self._drain_write_buffer_front()
            return dyn.addr_ready and len(self.write_buffer) < self._wb_entries
        # LOAD / RMW
        return dyn.performed and dyn.value_ready_cycle <= cycle

    def _retired_value(self, dyn: DynInstr) -> int:
        if dyn.opcode in (Opcode.LOAD, Opcode.RMW):
            return dyn.mem_value
        return dyn.result

    def _drain_write_buffer_front(self) -> None:
        while self.write_buffer and self.write_buffer[0].performed:
            self.write_buffer.popleft()

    # -------------------------------------------------------------- count

    def _count(self, cycle: int) -> int:
        traq = self.traq
        if not traq._entries:
            return 0
        return traq.count_ready(self.retired_seq, self._notify_count,
                                cycle=cycle)

    def _notify_count(self, entry: TraqEntry) -> None:
        """Counting-event fan-out (bound once; ``self.now`` is the counting
        cycle — :meth:`_count` only runs from inside :meth:`step`)."""
        cycle = self.now
        for sink in self.sinks:
            sink.on_count(entry, cycle)
        if self.tracer is not None:
            dyn = entry.dyn
            self.tracer.emit(InstrCountEvent(
                cycle=cycle, core_id=self.core_id,
                seq=-1 if dyn is None else dyn.seq, nmi=entry.nmi,
                opcode="filler" if dyn is None else dyn.opcode.value))

    # -------------------------------------------------------------- issue

    def _issue_memory(self, cycle: int) -> int:
        units = self._ldst_units
        issued = 0
        issued += self._drain_write_buffer(cycle, units)
        units -= issued
        if units > 0:
            issued += self._issue_pending(cycle, units)
        return issued

    def _drain_write_buffer(self, cycle: int, units: int) -> int:
        issued = 0
        for dyn in self.write_buffer:
            if issued >= units:
                break
            if dyn.performed or dyn.issued:
                continue
            if not self.policy.may_issue_store(dyn):
                if self._fifo_write_buffer:
                    break  # FIFO drain: nothing younger may pass
                continue
            op = MemOp(self.core_id, MemOpKind.STORE, dyn.addr,
                       store_value=dyn.source_value("data"),
                       on_perform=self._mem_callback(dyn))
            if not self.memsys.issue(op, cycle):
                break  # MSHRs exhausted
            dyn.issued = True
            issued += 1
            if self.tracer is not None:
                self.tracer.emit(WriteBufferDrainEvent(
                    cycle=cycle, core_id=self.core_id, seq=dyn.seq,
                    addr=dyn.addr, occupancy=len(self.write_buffer)))
        return issued

    def _issue_pending(self, cycle: int, units: int) -> int:
        issued = 0
        remaining: deque[DynInstr] = deque()
        pending = self._pending_issue
        while pending:
            dyn = pending.popleft()
            if issued >= units:
                remaining.append(dyn)
                continue
            if self._try_issue_one(dyn, cycle):
                issued += 1
            else:
                remaining.append(dyn)
        self._pending_issue = remaining
        return issued

    def _try_issue_one(self, dyn: DynInstr, cycle: int) -> bool:
        if dyn.addr_ready_cycle > cycle:
            return False
        if dyn.opcode is Opcode.RMW:
            if not self.policy.may_issue_rmw(dyn):
                return False
            op = MemOp(self.core_id, MemOpKind.RMW, dyn.addr,
                       rmw_op=dyn.instr.rmw_op,
                       rmw_operand=dyn.src_values.get("data"),
                       rmw_imm=dyn.instr.imm,
                       on_perform=self._mem_callback(dyn))
            return self.memsys.issue(op, cycle)
        # LOAD
        dependency = dyn.depends_on
        while dependency is not None and dependency.performed:
            # The nearest same-word access completed, but an older one may
            # still be pending (e.g. this load's dependency was itself a
            # load *forwarded* from a store that has not merged yet) — the
            # load must honour that one too, or it could read memory from
            # before the program-order-earlier store (a uniprocessor
            # same-address violation no recorder could repair).
            dependency = dyn.depends_on = self._find_same_word_dependency(dyn)
        if dependency is not None:
            if (dependency.opcode is Opcode.STORE and dependency.addr_ready
                    and self.policy.allows_forwarding()):
                if not self.policy.may_issue_load(dyn):
                    return False
                self._forward_load(dyn, dependency, cycle)
                return True
            else:
                return False
        if not self.policy.may_issue_load(dyn):
            return False
        op = MemOp(self.core_id, MemOpKind.LOAD, dyn.addr,
                   on_perform=self._mem_callback(dyn))
        return self.memsys.issue(op, cycle)

    def _forward_load(self, dyn: DynInstr, store: DynInstr, cycle: int) -> None:
        """Store-to-load forwarding: the load performs locally, taking the
        pending store's data (Section 3.4)."""
        dyn.forwarded_from = store
        self.forwarded_loads += 1
        self._complete_memory(dyn, cycle, cycle + 1, store.source_value("data"))

    def _mem_callback(self, dyn: DynInstr):
        def on_perform(op: MemOp) -> None:
            dyn.issued = True
            self._complete_memory(dyn, op.perform_cycle, op.value_ready_cycle,
                                  op.value)
        return on_perform

    def _complete_memory(self, dyn: DynInstr, perform_cycle: int,
                         value_ready_cycle: int, value: int | None) -> None:
        if dyn.performed:
            raise SimulationError(f"{dyn!r} performed twice")
        dyn.performed = True
        self.issue_version += 1
        bucket = self._same_word[dyn.addr]
        bucket.remove(dyn)
        if not bucket:
            del self._same_word[dyn.addr]
        dyn.perform_cycle = perform_cycle
        dyn.value_ready_cycle = value_ready_cycle
        dyn.mem_value = value
        self.schedule_wake(value_ready_cycle)
        if perform_cycle > self.now:
            # Performed from a bus commit while this core was not stepping
            # (tick runs before the step phase): the event-driven kernel
            # must step this core at the perform cycle — fences, write
            # buffer slots and MSHRs free up *at* the commit cycle, before
            # the value is ready.  Performs from our own step (hits,
            # forwarding) have perform_cycle == self.now and need no wake.
            # Only these commit-driven performs can un-doom an MSHR-full
            # rejection (the commit freed this core's MSHR and filled its
            # line), so only they advance the parked-access version.
            self.schedule_wake(perform_cycle)
            self.unpark_version += 1
        out_of_order = self.oldest_unperformed_mem_seq() < dyn.seq
        if dyn.is_load_like:
            if dyn.opcode is Opcode.RMW:
                self.rmws_performed += 1
            else:
                self.loads_performed += 1
            if out_of_order:
                self.ooo_loads += 1
        else:
            self.stores_performed += 1
            if out_of_order:
                self.ooo_stores += 1
        for sink in self.sinks:
            sink.on_perform(dyn, perform_cycle, out_of_order)
        if self.tracer is not None:
            self.tracer.emit(InstrPerformEvent(
                cycle=perform_cycle, core_id=self.core_id, seq=dyn.seq,
                opcode=dyn.opcode.value, addr=dyn.addr,
                out_of_order=out_of_order))
        if dyn.is_load_like:
            self._complete_result(dyn, value, value_ready_cycle)

    # ----------------------------------------------------------- dispatch

    def _dispatch(self, cycle: int) -> int:
        dispatched = 0
        width = self._issue_width
        while dispatched < width:
            if self.stalled_branch is not None:
                branch = self.stalled_branch
                if not branch.branch_resolved or branch.ready_cycle > cycle:
                    break
                self.pc = (branch.instr.target if branch.branch_taken
                           else branch.pc + 1)
                self.stalled_branch = None
            if self.halted:
                break
            if len(self.rob) >= self._rob_entries:
                break
            # Emit an NMI filler as soon as a full group of non-memory
            # instructions accumulates (Section 4.1), so a memory access or
            # HALT never needs more than one TRAQ slot.
            if self.pending_nmi >= self.traq.max_nmi:
                if not self.traq.has_space(1):
                    self.dispatch_stall_traq += 1
                    self.traq.stall_cycles += 1
                    break
                self.traq.push_filler(self.traq.max_nmi, self.next_seq - 1,
                                      cycle=cycle)
                self.pending_nmi -= self.traq.max_nmi
            instr = self.program[self.pc]
            if instr.is_memory:
                if self.lsq_occupancy >= self._lsq_entries:
                    break
                if not self.traq.has_space(1):
                    self.dispatch_stall_traq += 1
                    self.traq.stall_cycles += 1
                    break
            elif instr.opcode is Opcode.HALT:
                # The trailing non-memory run (including HALT) needs a filler.
                if not self.traq.has_space(1):
                    self.dispatch_stall_traq += 1
                    self.traq.stall_cycles += 1
                    break
            self._dispatch_one(instr, cycle)
            dispatched += 1
            if self.halted or self.stalled_branch is not None:
                break
        return dispatched

    def _dispatch_one(self, instr, cycle: int) -> None:
        dyn = DynInstr(self.core_id, self.next_seq, instr, self.pc, cycle)
        self.next_seq += 1
        self.rob.append(dyn)
        self._capture_sources(dyn, cycle)

        opcode = instr.opcode
        if opcode in (Opcode.BEQZ, Opcode.BNEZ):
            self.pending_nmi += 1
            if dyn.pending_sources == 0:
                self._resolve_branch(dyn)
                self.pc = instr.target if dyn.branch_taken else self.pc + 1
            else:
                self.stalled_branch = dyn
            return
        if opcode is Opcode.JUMP:
            self.pending_nmi += 1
            dyn.completed = True
            dyn.ready_cycle = cycle
            self.pc = instr.target
            return
        if opcode is Opcode.HALT:
            self.halted = True
            self.pending_nmi += 1
            self.traq.push_filler(self.pending_nmi, dyn.seq, cycle=cycle)
            self.pending_nmi = 0
            self.pc += 1
            return

        self.pc += 1
        if instr.is_memory:
            self.lsq_occupancy += 1
            self.traq.push_mem(dyn, self.pending_nmi, cycle=cycle)
            self.pending_nmi = 0
            self._register_memory(dyn)
            if dyn.pending_sources == 0:
                self._resolve_address(dyn)
            return

        self.pending_nmi += 1
        if opcode is Opcode.FENCE:
            self._barriers.append(dyn)
            dyn.completed = True
            dyn.ready_cycle = cycle
        elif opcode is Opcode.NOP:
            dyn.completed = True
            dyn.ready_cycle = cycle
        elif opcode is Opcode.MOVI:
            self._complete_result(dyn, instr.imm, cycle)
        elif opcode is Opcode.ALU:
            if dyn.pending_sources == 0:
                self._execute_alu(dyn)
        else:  # pragma: no cover - exhaustive
            raise SimulationError(f"unknown opcode {opcode}")

    def _register_memory(self, dyn: DynInstr) -> None:
        self._unperformed_mem.append(dyn)
        if dyn.is_load_like:
            self._unperformed_loads.append(dyn)
        if dyn.is_store_like:
            self._unperformed_stores.append(dyn)
            self._unresolved_stores.append(dyn)
        if dyn.opcode is Opcode.RMW or dyn.instr.acquire:
            self._barriers.append(dyn)

    def _capture_sources(self, dyn: DynInstr, cycle: int) -> None:
        instr = dyn.instr
        roles: list[tuple[str, int]] = []
        if instr.opcode is Opcode.ALU:
            roles.append(("a", instr.src1))
            if instr.src2 is not None:
                roles.append(("b", instr.src2))
        elif instr.opcode in (Opcode.BEQZ, Opcode.BNEZ):
            roles.append(("cond", instr.src1))
        elif instr.opcode is Opcode.STORE:
            roles.append(("data", instr.src1))
            if instr.addr_base is not None:
                roles.append(("base", instr.addr_base))
        elif instr.opcode is Opcode.LOAD:
            if instr.addr_base is not None:
                roles.append(("base", instr.addr_base))
        elif instr.opcode is Opcode.RMW:
            if instr.src1 is not None:
                roles.append(("data", instr.src1))
            if instr.addr_base is not None:
                roles.append(("base", instr.addr_base))
        for role, register in roles:
            producer = self.rename[register]
            if producer is None:
                dyn.src_values[role] = self.spec_regs[register]
            elif producer.completed:
                dyn.src_values[role] = producer.result
                if producer.ready_cycle > dyn.operands_ready_cycle:
                    dyn.operands_ready_cycle = producer.ready_cycle
            else:
                producer.waiters.append((dyn, role))
                dyn.pending_sources += 1
        destination = dyn.dest
        if destination is not None:
            self.rename[destination] = dyn

    # ------------------------------------------------------ dataflow core

    def _complete_result(self, dyn: DynInstr, value: int, ready_cycle: int) -> None:
        """Mark a register-producing instruction complete and wake waiters."""
        worklist: list[tuple[DynInstr, int, int]] = [(dyn, value, ready_cycle)]
        while worklist:
            producer, result, ready = worklist.pop()
            producer.completed = True
            producer.result = result
            producer.ready_cycle = ready
            self.schedule_wake(ready)
            destination = producer.dest
            if destination is not None and self.rename[destination] is producer:
                self.spec_regs[destination] = result
            waiters, producer.waiters = producer.waiters, []
            for consumer, role in waiters:
                consumer.src_values[role] = result
                if ready > consumer.operands_ready_cycle:
                    consumer.operands_ready_cycle = ready
                consumer.pending_sources -= 1
                if consumer.pending_sources == 0:
                    completion = self._on_operands_ready(consumer)
                    if completion is not None:
                        worklist.append(completion)

    def _on_operands_ready(self, dyn: DynInstr):
        """Handle an instruction whose last operand just arrived.

        Returns a ``(dyn, value, ready_cycle)`` completion for ALU chains so
        the caller's worklist can continue propagation; memory and branch
        handling happens in place.
        """
        opcode = dyn.opcode
        if opcode is Opcode.ALU:
            instr = dyn.instr
            b = dyn.source_value("b") if instr.src2 is not None else instr.imm
            value = eval_alu(instr.alu_op, dyn.source_value("a"), b)
            return (dyn, value, dyn.operands_ready_cycle + self._alu_latency)
        if opcode in (Opcode.BEQZ, Opcode.BNEZ):
            self._resolve_branch(dyn)
            return None
        if dyn.is_memory:
            self._resolve_address(dyn)
            return None
        raise SimulationError(f"unexpected operand wait for {dyn!r}")

    def _execute_alu(self, dyn: DynInstr) -> None:
        instr = dyn.instr
        b = dyn.source_value("b") if instr.src2 is not None else instr.imm
        value = eval_alu(instr.alu_op, dyn.source_value("a"), b)
        self._complete_result(dyn, value,
                              dyn.operands_ready_cycle + self._alu_latency)

    def _resolve_branch(self, dyn: DynInstr) -> None:
        condition = dyn.source_value("cond")
        dyn.branch_taken = ((condition == 0) if dyn.opcode is Opcode.BEQZ
                            else (condition != 0))
        dyn.branch_resolved = True
        dyn.ready_cycle = dyn.operands_ready_cycle + 1
        self.schedule_wake(dyn.ready_cycle)

    def _resolve_address(self, dyn: DynInstr) -> None:
        instr = dyn.instr
        base = dyn.source_value("base") if instr.addr_base is not None else 0
        address = base + instr.addr_offset
        if address < 0 or address % 8:
            raise SimulationError(
                f"core {self.core_id}: bad address {address:#x} for {dyn!r} "
                f"(pc={dyn.pc}, note={instr.note!r})")
        dyn.addr = address
        dyn.addr_ready = True
        dyn.addr_ready_cycle = dyn.operands_ready_cycle + 1
        self.issue_version += 1
        self._same_word.setdefault(address, []).append(dyn)
        self.schedule_wake(dyn.addr_ready_cycle)
        if dyn.opcode is Opcode.STORE:
            # Stores wait for retirement (write buffer); resolving the
            # address may unblock loads waiting on disambiguation.
            self._promote_disambiguated()
            return
        if dyn.opcode is Opcode.RMW:
            self._promote_disambiguated()
            self._admit_counter += 1
            dyn.admit_order = self._admit_counter
            self._pending_issue.append(dyn)
            return
        # LOAD: conservative disambiguation against older store addresses.
        if self._oldest_unresolved_store_seq() > dyn.seq:
            self._admit_load(dyn)
        else:
            self._waiting_disambiguation.append(dyn)

    def _admit_load(self, dyn: DynInstr) -> None:
        dyn.depends_on = self._find_same_word_dependency(dyn)
        self._admit_counter += 1
        dyn.admit_order = self._admit_counter
        self._pending_issue.append(dyn)

    def _promote_disambiguated(self) -> None:
        if not self._waiting_disambiguation:
            return
        threshold = self._oldest_unresolved_store_seq()
        still_waiting = []
        promoted = []
        for load in self._waiting_disambiguation:
            if load.seq < threshold:
                promoted.append(load)
            else:
                still_waiting.append(load)
        self._waiting_disambiguation = still_waiting
        for load in sorted(promoted, key=lambda d: d.seq):
            self._admit_load(load)

    def _find_same_word_dependency(self, dyn: DynInstr) -> DynInstr | None:
        """Nearest older unperformed same-word access (for ordering or
        forwarding).  Older stores all have resolved addresses here."""
        best: DynInstr | None = None
        seq = dyn.seq
        for other in self._same_word.get(dyn.addr, ()):
            if other.seq < seq and (best is None or other.seq > best.seq):
                best = other
        return best
