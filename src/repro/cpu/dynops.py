"""Dynamic (in-flight) instruction state for the out-of-order core.

The core is an eager-dataflow model: when the last source operand of an
instruction becomes available, its result is computed immediately and
stamped with the *cycle at which it becomes architecturally usable*
(operand availability plus functional-unit latency).  Consumers observe
that timestamp, so timing is respected without per-cycle polling of every
in-flight instruction.

For memory instructions, the interesting timestamps are exactly the
paper's events: *perform* (the access's coherence-order point) and
*counting* (in-order post-completion, handled by the TRAQ).
"""

from __future__ import annotations

from ..common.errors import SimulationError
from ..isa.instructions import Instruction, Opcode

__all__ = ["DynInstr"]


class DynInstr:
    """One dynamic instruction instance."""

    __slots__ = (
        "core_id", "seq", "instr", "pc", "dispatch_cycle",
        # static predicates, cached off `instr` at construction (hot paths
        # read them once per event; a property indirection per read shows
        # up in profiles)
        "opcode", "is_memory", "is_load_like", "is_store_like", "dest",
        # result dataflow
        "pending_sources", "src_values", "operands_ready_cycle",
        "completed", "result", "ready_cycle", "waiters",
        # control flow
        "branch_resolved", "branch_taken",
        # memory
        "addr", "addr_ready", "addr_ready_cycle",
        "performed", "perform_cycle", "value_ready_cycle", "mem_value",
        "issued", "forwarded_from", "depends_on", "in_write_buffer",
        "admit_order",
        # lifecycle
        "retired", "retire_cycle",
    )

    def __init__(self, core_id: int, seq: int, instr: Instruction, pc: int,
                 dispatch_cycle: int):
        self.core_id = core_id
        self.seq = seq
        self.instr = instr
        self.pc = pc
        self.dispatch_cycle = dispatch_cycle
        # Inline identity tests instead of the Instruction properties:
        # this constructor runs once per dynamic instruction and the
        # property descriptors dominate its profile otherwise.
        op = instr.opcode
        self.opcode = op
        load = op is Opcode.LOAD
        store = op is Opcode.STORE
        rmw = op is Opcode.RMW
        self.is_memory = load or store or rmw
        self.is_load_like = load or rmw
        self.is_store_like = store or rmw
        self.dest = (instr.dst if (load or rmw or op is Opcode.ALU
                                   or op is Opcode.MOVI) else None)

        self.pending_sources = 0
        # role -> value; roles: "a", "b", "base", "data", "cond"
        self.src_values: dict[str, int] = {}
        self.operands_ready_cycle = dispatch_cycle

        self.completed = False          # register result available
        self.result: int | None = None
        self.ready_cycle = -1           # when `result` can be consumed
        self.waiters: list[tuple["DynInstr", str]] = []

        self.branch_resolved = False
        self.branch_taken = False

        self.addr: int | None = None    # resolved byte address
        self.addr_ready = False
        self.addr_ready_cycle = -1
        self.performed = False
        self.perform_cycle = -1
        self.value_ready_cycle = -1
        self.mem_value: int | None = None   # loaded value / RMW old value
        self.issued = False
        self.forwarded_from: "DynInstr | None" = None
        self.depends_on: "DynInstr | None" = None
        self.in_write_buffer = False
        # Position in the core's issue-admission order (stamped when the
        # access enters the pending-issue queue); lets the compiled kernel
        # split and re-merge that queue without losing the generic order.
        self.admit_order = 0

        self.retired = False
        self.retire_cycle = -1

    # ------------------------------------------------------------ queries

    def source_value(self, role: str) -> int:
        try:
            return self.src_values[role]
        except KeyError:
            raise SimulationError(
                f"source {role!r} of {self!r} consumed before it was produced")

    def countable(self, retired_seq: int) -> bool:
        """Ready for the TRAQ's in-order counting step (Section 3.1)?

        A load counts once performed *and* retired; a store once retired
        *and* performed.  Non-memory instructions never own a TRAQ entry.
        """
        del retired_seq  # used by filler entries; kept for interface parity
        return self.retired and self.performed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"DynInstr(core={self.core_id}, seq={self.seq}, "
                f"{self.instr.opcode.value}@{self.pc})")
