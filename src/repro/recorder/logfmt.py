"""Interval-log format (Figure 6(c)) with bit-exact encoding.

A per-core log is a sequence of entries; each interval's entries are
followed by its ``IntervalFrame``, which carries the (wrapping) CISN and the
QuickRec-style global timestamp used for interval ordering.  Entry types:

``InorderBlock``
    A run of consecutive instructions (memory *and* non-memory, thanks to
    the NMI mechanism) to be replayed natively in program order.
``ReorderedLoad``
    The next instruction in program order is a load whose perform event
    could not be moved to its counting event; its recorded value is
    injected at replay.
``ReorderedStore``
    Likewise for a store: the address/value written plus the ``offset`` (in
    intervals) back to the interval where it performed.  A patching pass
    moves the memory update there and leaves a ``Dummy`` at the counting
    position.
``ReorderedRmw``
    Extension for atomic read-modify-writes (the paper's mechanism applied
    to RMWs): records the old value (register result), the new memory
    value, the address, and the perform-interval offset.
``Dummy``
    Post-patching placeholder: skip one instruction (PC advance only).
    Never produced by the recorder itself.

Sizes are reported in *bits* because Figure 11 measures bits per
kilo-instruction of uncompressed log.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..common.bits import BitReader, BitWriter
from ..common.config import RecorderConfig
from ..common.errors import LogFormatError

__all__ = [
    "EntryType",
    "InorderBlock",
    "ReorderedLoad",
    "ReorderedStore",
    "ReorderedRmw",
    "Dummy",
    "IntervalFrame",
    "LogEntry",
    "entry_bit_size",
    "encode_log",
    "decode_log",
]

_TYPE_BITS = 3
_BLOCK_BITS = 32
_VALUE_BITS = 64
_ADDR_BITS = 64
_OFFSET_BITS = 16
_TIMESTAMP_BITS = 64


class EntryType(enum.IntEnum):
    """On-disk type tags of the interval-log entries (3 bits)."""

    INORDER_BLOCK = 0
    REORDERED_LOAD = 1
    REORDERED_STORE = 2
    REORDERED_RMW = 3
    DUMMY = 4
    INTERVAL_FRAME = 5


@dataclass(frozen=True)
class InorderBlock:
    size: int  # total instructions (not just memory accesses)


@dataclass(frozen=True)
class ReorderedLoad:
    value: int


@dataclass(frozen=True)
class ReorderedStore:
    addr: int
    value: int
    offset: int  # intervals between perform and counting


@dataclass(frozen=True)
class ReorderedRmw:
    old_value: int   # architectural result (dst register)
    new_value: int   # value left in memory
    addr: int
    offset: int


@dataclass(frozen=True)
class Dummy:
    """Skip one instruction (its memory effect was patched elsewhere)."""


@dataclass(frozen=True)
class IntervalFrame:
    cisn: int        # wrapping interval sequence number
    timestamp: int   # global-clock cycle of interval termination (QuickRec)


LogEntry = (InorderBlock | ReorderedLoad | ReorderedStore | ReorderedRmw
            | Dummy | IntervalFrame)


def entry_bit_size(entry: LogEntry, config: RecorderConfig) -> int:
    """Uncompressed size of one entry in bits."""
    if isinstance(entry, InorderBlock):
        return _TYPE_BITS + _BLOCK_BITS
    if isinstance(entry, ReorderedLoad):
        return _TYPE_BITS + _VALUE_BITS
    if isinstance(entry, ReorderedStore):
        return _TYPE_BITS + _ADDR_BITS + _VALUE_BITS + _OFFSET_BITS
    if isinstance(entry, ReorderedRmw):
        return _TYPE_BITS + _ADDR_BITS + 2 * _VALUE_BITS + _OFFSET_BITS
    if isinstance(entry, Dummy):
        return _TYPE_BITS
    if isinstance(entry, IntervalFrame):
        return _TYPE_BITS + config.cisn_bits + _TIMESTAMP_BITS
    raise LogFormatError(f"unknown log entry {entry!r}")


def encode_log(entries, config: RecorderConfig) -> tuple[bytes, int]:
    """Serialize entries to a bit stream; returns ``(data, bit_length)``."""
    writer = BitWriter()
    cisn_mask = (1 << config.cisn_bits) - 1
    for entry in entries:
        if isinstance(entry, InorderBlock):
            writer.write(EntryType.INORDER_BLOCK, _TYPE_BITS)
            writer.write(entry.size, _BLOCK_BITS)
        elif isinstance(entry, ReorderedLoad):
            writer.write(EntryType.REORDERED_LOAD, _TYPE_BITS)
            writer.write(entry.value, _VALUE_BITS)
        elif isinstance(entry, ReorderedStore):
            writer.write(EntryType.REORDERED_STORE, _TYPE_BITS)
            writer.write(entry.addr, _ADDR_BITS)
            writer.write(entry.value, _VALUE_BITS)
            writer.write(entry.offset, _OFFSET_BITS)
        elif isinstance(entry, ReorderedRmw):
            writer.write(EntryType.REORDERED_RMW, _TYPE_BITS)
            writer.write(entry.old_value, _VALUE_BITS)
            writer.write(entry.new_value, _VALUE_BITS)
            writer.write(entry.addr, _ADDR_BITS)
            writer.write(entry.offset, _OFFSET_BITS)
        elif isinstance(entry, Dummy):
            writer.write(EntryType.DUMMY, _TYPE_BITS)
        elif isinstance(entry, IntervalFrame):
            writer.write(EntryType.INTERVAL_FRAME, _TYPE_BITS)
            writer.write(entry.cisn & cisn_mask, config.cisn_bits)
            writer.write(entry.timestamp, _TIMESTAMP_BITS)
        else:
            raise LogFormatError(f"cannot encode {entry!r}")
    return writer.getvalue(), writer.bit_length


def decode_log(data: bytes, bit_length: int, config: RecorderConfig) -> list[LogEntry]:
    """Parse a bit stream produced by :func:`encode_log`."""
    reader = BitReader(data, bit_length)
    entries: list[LogEntry] = []
    while not reader.exhausted:
        try:
            kind = EntryType(reader.read(_TYPE_BITS))
        except ValueError as exc:
            raise LogFormatError(f"bad entry type near bit "
                                 f"{bit_length - reader.bits_remaining}") from exc
        if kind is EntryType.INORDER_BLOCK:
            entries.append(InorderBlock(reader.read(_BLOCK_BITS)))
        elif kind is EntryType.REORDERED_LOAD:
            entries.append(ReorderedLoad(reader.read(_VALUE_BITS)))
        elif kind is EntryType.REORDERED_STORE:
            addr = reader.read(_ADDR_BITS)
            value = reader.read(_VALUE_BITS)
            offset = reader.read(_OFFSET_BITS)
            entries.append(ReorderedStore(addr, value, offset))
        elif kind is EntryType.REORDERED_RMW:
            old = reader.read(_VALUE_BITS)
            new = reader.read(_VALUE_BITS)
            addr = reader.read(_ADDR_BITS)
            offset = reader.read(_OFFSET_BITS)
            entries.append(ReorderedRmw(old, new, addr, offset))
        elif kind is EntryType.DUMMY:
            entries.append(Dummy())
        else:
            cisn = reader.read(config.cisn_bits)
            timestamp = reader.read(_TIMESTAMP_BITS)
            entries.append(IntervalFrame(cisn, timestamp))
    return entries
