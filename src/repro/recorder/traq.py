"""The Tracking Queue (TRAQ) — Section 3.3 and Figure 6(b).

The TRAQ is a circular FIFO that works alongside the ROB for memory-access
instructions: an entry is allocated at dispatch and released when the
instruction reaches the TRAQ head and is *counted* (performed + retired).
The queue also carries *filler* entries for runs of more than ``2**nmi_bits
- 1`` consecutive non-memory instructions, so InorderBlock sizes can be
expressed in total instructions (the NMI mechanism of Section 4.1).

The structural TRAQ is shared by every attached recorder variant (they all
see the same dispatch/perform/count event stream); each recorder keeps its
*own* per-entry PISN and Snoop Count metadata, because those depend on the
recorder's interval stream.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..common.errors import SimulationError
from ..cpu.dynops import DynInstr
from ..obs.events import TraqDequeueEvent, TraqEnqueueEvent

__all__ = ["TraqEntry", "TrackingQueue"]


class TraqEntry:
    """One TRAQ slot: a memory instruction or an NMI filler group."""

    __slots__ = ("dyn", "nmi", "last_seq", "entry_id")

    def __init__(self, dyn: DynInstr | None, nmi: int, last_seq: int, entry_id: int):
        self.dyn = dyn              # None for filler entries
        self.nmi = nmi              # non-memory instructions preceding `dyn`
        self.last_seq = last_seq    # youngest instruction seq covered
        self.entry_id = entry_id    # monotonically increasing identity

    @property
    def is_filler(self) -> bool:
        return self.dyn is None

    def countable(self, retired_seq: int) -> bool:
        if self.dyn is None:
            # Filler groups count once the covered instructions retired.
            return retired_seq >= self.last_seq
        return self.dyn.countable(retired_seq)

    def instruction_count(self) -> int:
        """Instructions this entry contributes to an InorderBlock if in-order."""
        return self.nmi + (0 if self.dyn is None else 1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "filler" if self.dyn is None else self.dyn.instr.opcode.value
        return f"TraqEntry({kind}, nmi={self.nmi}, id={self.entry_id})"


class TrackingQueue:
    """FIFO of :class:`TraqEntry` with bounded capacity and counting bandwidth.

    ``count_bandwidth`` models the paper's "TRAQ ... read twice (at counting
    events) per cycle"; a full TRAQ stalls dispatch (tracked via
    ``stall_cycles`` for the Section 5.3 analysis).
    """

    def __init__(self, capacity: int, nmi_bits: int, count_bandwidth: int = 2):
        if capacity <= 0:
            raise SimulationError("TRAQ capacity must be positive")
        self.capacity = capacity
        self.max_nmi = (1 << nmi_bits) - 1
        self.count_bandwidth = count_bandwidth
        self._entries: deque[TraqEntry] = deque()
        self._next_id = 0
        # Observability (set by the machine when tracing is enabled).
        self.tracer = None
        self.core_id = -1
        # Statistics.
        self.stall_cycles = 0
        self.entries_counted = 0
        self.fillers_allocated = 0
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def space_needed(self, pending_nmi: int) -> int:
        """Slots a memory-instruction dispatch with ``pending_nmi`` preceding
        non-memory instructions will consume (fillers + the entry itself)."""
        return max(0, (pending_nmi - 1) // self.max_nmi) + 1

    def has_space(self, slots: int = 1) -> bool:
        """Whether ``slots`` more entries fit (dispatch stalls otherwise)."""
        return len(self._entries) + slots <= self.capacity

    def push_mem(self, dyn: DynInstr, pending_nmi: int, *,
                 cycle: int = 0) -> list[TraqEntry]:
        """Allocate entries for a dispatched memory instruction.

        Runs of more than ``max_nmi`` preceding non-memory instructions are
        split into filler entries of ``max_nmi`` (well, ``max_nmi + 1``
        instructions each, carried as nmi=max_nmi+... the paper allocates a
        filler per group of 15 with NMI=15); the memory entry carries the
        remainder.
        """
        entries: list[TraqEntry] = []
        remaining = pending_nmi
        while remaining > self.max_nmi:
            entries.append(self._alloc(None, self.max_nmi, dyn.seq - remaining +
                                       self.max_nmi - 1))
            remaining -= self.max_nmi
            self.fillers_allocated += 1
        entries.append(self._alloc(dyn, remaining, dyn.seq))
        if len(self._entries) > self.capacity:
            raise SimulationError("TRAQ overflow: caller must check has_space")
        if self.tracer is not None:
            self._trace_enqueued(entries, cycle)
        return entries

    def push_filler(self, count: int, last_seq: int, *,
                    cycle: int = 0) -> list[TraqEntry]:
        """Allocate filler entries for trailing non-memory instructions
        (e.g. the tail of the program after its last memory access)."""
        entries = []
        remaining = count
        while remaining > 0:
            chunk = min(remaining, self.max_nmi)
            entries.append(self._alloc(None, chunk, last_seq - remaining + chunk))
            self.fillers_allocated += 1
            remaining -= chunk
        if len(self._entries) > self.capacity:
            raise SimulationError("TRAQ overflow: caller must check has_space")
        if self.tracer is not None:
            self._trace_enqueued(entries, cycle)
        return entries

    def _trace_enqueued(self, entries: list[TraqEntry], cycle: int) -> None:
        occupancy = len(self._entries)
        for entry in entries:
            self.tracer.emit(TraqEnqueueEvent(
                cycle=cycle, core_id=self.core_id, entry_id=entry.entry_id,
                is_filler=entry.is_filler, occupancy=occupancy))

    def _alloc(self, dyn: DynInstr | None, nmi: int, last_seq: int) -> TraqEntry:
        entry = TraqEntry(dyn, nmi, last_seq, self._next_id)
        self._next_id += 1
        self._entries.append(entry)
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)
        return entry

    def flush_younger_than(self, seq: int) -> int:
        """Pipeline-flush support: drop entries covering instructions younger
        than ``seq`` (ROB flush propagates to the TRAQ, Section 4.1).
        Returns the number of dropped entries."""
        dropped = 0
        while self._entries and self._entries[-1].last_seq > seq:
            self._entries.pop()
            dropped += 1
        return dropped

    def count_ready(self, retired_seq: int,
                    on_count: Callable[[TraqEntry], None], *,
                    cycle: int = 0) -> int:
        """Pop and count up to ``count_bandwidth`` countable head entries."""
        counted = 0
        while (counted < self.count_bandwidth and self._entries
               and self._entries[0].countable(retired_seq)):
            entry = self._entries.popleft()
            self.entries_counted += 1
            counted += 1
            if self.tracer is not None:
                self.tracer.emit(TraqDequeueEvent(
                    cycle=cycle, core_id=self.core_id,
                    entry_id=entry.entry_id, occupancy=len(self._entries)))
            on_count(entry)
        return counted
