"""Interval-ordering schemes (Section 3.6 / Figure 7).

RelaxReplay's event-tracking mechanism composes with *any* chunk-based
interval-ordering scheme.  Two are implemented:

``QuickRec`` (the paper's evaluation default, Section 4.1)
    A globally-consistent scalar timestamp — the global cycle count at
    interval termination — recorded in each IntervalFrame.  Replay follows
    the total order (timestamp, core id).  Simple, but serializes replay.

``Cyrus``-style pairwise ordering (this module)
    When an incoming coherence transaction conflicts with the local
    interval, the *source* interval (the one being terminated) records a
    dependence edge to the requester's *current* interval — in hardware the
    requester's interval id rides on the coherence reply; in this model the
    recorder group provides it.  The resulting interval DAG admits parallel
    replay: an interval may start once its predecessors finished, so
    independent intervals of different cores replay concurrently
    (Section 2.1's third advantage; exploited by
    :mod:`repro.replay.parallel`).

Edges are conservative over-approximations of the true dependences (Bloom
false positives add edges, never remove them), so any topological execution
of the DAG reproduces the recorded execution — which the parallel
replayer's verification checks end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IntervalEdge", "DependenceTracker"]


@dataclass(frozen=True)
class IntervalEdge:
    """``(src_core, src_cisn)`` must replay before ``(dst_core, dst_cisn)``."""

    src_core: int
    src_cisn: int
    dst_core: int
    dst_cisn: int


@dataclass
class DependenceTracker:
    """Collects the pairwise edges of one recorder variant across cores.

    The :class:`~repro.sim.machine.Machine` registers every per-core
    recorder of a variant with the same tracker; when core ``s`` terminates
    an interval because of a conflicting transaction from requester ``r``,
    it calls :meth:`record_conflict` and the tracker snapshots ``r``'s
    current interval number — exactly the information a real implementation
    piggybacks on the coherence message.
    """

    recorders: dict[int, object] = field(default_factory=dict)
    edges: list[IntervalEdge] = field(default_factory=list)
    _seen: set[tuple[int, int, int, int]] = field(default_factory=set)

    def register(self, core_id: int, recorder) -> None:
        self.recorders[core_id] = recorder

    def _add(self, src_core: int, src_cisn: int, dst_core: int,
             dst_cisn: int) -> None:
        if src_cisn < 0 or src_core == dst_core:
            return
        key = (src_core, src_cisn, dst_core, dst_cisn)
        if key in self._seen:
            return
        self._seen.add(key)
        self.edges.append(IntervalEdge(src_core, src_cisn,
                                       dst_core, dst_cisn))

    def record_conflict(self, src_core: int, src_cisn: int,
                        dst_core: int) -> None:
        """The interval ``(src_core, src_cisn)`` was terminated by a
        conflicting request from ``dst_core``: a strong dependence edge."""
        destination = self.recorders.get(dst_core)
        if destination is None:
            return
        self._add(src_core, src_cisn, dst_core, destination.cisn)

    def record_observation(self, observer_core: int, last_terminated: int,
                           dst_core: int) -> None:
        """A *weak* edge: the requester's current interval is ordered after
        every interval the observer has already terminated.

        This supplies the transitivity the scalar-timestamp total order
        provides for free: a dependence whose source access lives in an
        already-terminated interval (its signature long cleared) raises no
        conflict at the destination's request, yet the destination must
        still replay after it.  In hardware, this is the predecessor
        information Cyrus piggybacks on every coherence response.
        """
        destination = self.recorders.get(dst_core)
        if destination is None:
            return
        self._add(observer_core, last_terminated, dst_core, destination.cisn)

    def edges_for(self) -> list[IntervalEdge]:
        return list(self.edges)
