"""The per-processor Memory Race Recorder (Sections 3 and 4, Figure 6).

:class:`RelaxReplayRecorder` consumes a core's perform/counting events and
the bus's snoop stream, forms intervals (QuickRec-style scalar-timestamp
ordering: an interval terminates when an incoming coherence transaction
conflicts with its read/write signatures, or when the configured maximum
interval size is reached), and emits the interval log of Figure 6(c).

The recorder is *passive*: several variants (Base/Opt x 4K/INF) can observe
the same execution simultaneously, which is how the evaluation sweeps are
run.  Each variant keeps its own CISN stream, signatures, Snoop Table and
per-entry PISN / Snoop Count metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.bloom import BloomSignature
from ..common.config import RecorderConfig, RecorderMode
from ..common.errors import SimulationError
from ..cpu.dynops import DynInstr
from ..isa.instructions import Opcode
from ..isa.semantics import eval_rmw
from ..mem.coherence import SnoopEvent
from ..obs.events import ChunkCutEvent
from .logfmt import (
    InorderBlock,
    IntervalFrame,
    LogEntry,
    ReorderedLoad,
    ReorderedRmw,
    ReorderedStore,
    entry_bit_size,
)
from .snoop_table import SnoopTable
from .traq import TraqEntry

__all__ = ["RecorderStats", "RelaxReplayRecorder"]


@dataclass
class RecorderStats:
    """Aggregate counters for the evaluation figures."""

    mem_counted: int = 0
    instructions_counted: int = 0
    inorder_mem: int = 0
    moved_across_intervals: int = 0   # Opt: perform moved past >=1 boundary
    reordered_loads: int = 0
    reordered_stores: int = 0
    reordered_rmws: int = 0
    inorder_blocks: int = 0
    frames: int = 0
    log_bits: int = 0
    conflict_terminations: int = 0
    size_terminations: int = 0
    eviction_terminations: int = 0
    # Coverage signals for the adversarial fuzzer (repro.fuzz): summed
    # read+write signature set-bit count sampled at every interval cut
    # (occupancy), conflict cuts whose line was NOT in the exact address
    # sets (pure Bloom aliasing), and Snoop Table transaction observations.
    signature_set_bits: int = 0
    signature_alias_terminations: int = 0
    snoop_observed: int = 0
    entry_bits_by_type: dict[str, int] = field(default_factory=dict)
    # Line address -> number of conflicting incoming transactions that
    # terminated an interval because of it (contention hot spots).
    conflict_lines: dict[int, int] = field(default_factory=dict)

    #: Plain additive counters (everything except the dict-valued fields).
    COUNTER_FIELDS = (
        "mem_counted", "instructions_counted", "inorder_mem",
        "moved_across_intervals", "reordered_loads", "reordered_stores",
        "reordered_rmws", "inorder_blocks", "frames", "log_bits",
        "conflict_terminations", "size_terminations",
        "eviction_terminations", "signature_set_bits",
        "signature_alias_terminations", "snoop_observed",
    )
    #: Dict-valued fields merged key-wise.
    DICT_FIELDS = ("entry_bits_by_type", "conflict_lines")

    def merge(self, other: "RecorderStats") -> None:
        """Fold another core's stats into this accumulator."""
        for name in self.COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name in self.DICT_FIELDS:
            merged = getattr(self, name)
            for key, value in getattr(other, name).items():
                merged[key] = merged.get(key, 0) + value

    def counters(self) -> dict[str, int]:
        """Flat counter dict for the metrics registry."""
        return {name: getattr(self, name) for name in self.COUNTER_FIELDS}

    @property
    def reordered_total(self) -> int:
        return self.reordered_loads + self.reordered_stores + self.reordered_rmws

    @property
    def reordered_fraction(self) -> float:
        return self.reordered_total / self.mem_counted if self.mem_counted else 0.0

    def bits_per_kilo_instruction(self) -> float:
        if not self.instructions_counted:
            return 0.0
        return self.log_bits * 1000.0 / self.instructions_counted


class RelaxReplayRecorder:
    """One recorder variant attached to one core."""

    def __init__(self, core_id: int, config: RecorderConfig, line_bytes: int,
                 *, seed: int = 0, name: str | None = None,
                 dependence_tracker=None):
        config.validate()
        self.core_id = core_id
        self.config = config
        self.line_bytes = line_bytes
        # Optional Cyrus-style pairwise ordering (repro.recorder.ordering):
        # when set, conflict-driven terminations record an interval edge to
        # the requester's current interval, enabling parallel replay.
        self.dependence_tracker = dependence_tracker
        if dependence_tracker is not None:
            dependence_tracker.register(core_id, self)
        cap = config.max_interval_instructions
        self.name = name or (
            f"{config.mode.value}_{'INF' if cap is None else str(cap)}")

        self.read_sig = BloomSignature(config.signature_banks,
                                       config.signature_bits_per_bank, seed=seed)
        self.write_sig = BloomSignature(config.signature_banks,
                                        config.signature_bits_per_bank, seed=seed)
        self.snoop_table = (SnoopTable(config, seed=seed)
                            if config.mode is RecorderMode.OPT else None)

        self.cisn = 0                      # full (unwrapped) interval number
        self.block_size = 0                # Current InorderBlock Size count
        self.counted_in_interval = 0       # instructions counted this interval
        self.performs_in_interval = 0
        self.entries_in_interval = 0
        self.entries: list[LogEntry] = []
        self.stats = RecorderStats()
        # Optional structured trace bus (None keeps recording untraced).
        self.tracer = None

        # Per-in-flight-instruction recorder state (the PISN and Snoop Count
        # fields of the TRAQ entry, Figure 6(b)), keyed by dynamic seq.
        self._pisn: dict[int, int] = {}
        self._snoop_sample: dict[int, tuple[int, ...]] = {}
        # Patch-target clamping (reproduction refinement, see DESIGN.md):
        # line -> count-interval of the latest access whose perform event was
        # *moved* across interval boundaries.  A younger same-line store
        # patched to an interval before that point would replay before the
        # moved access — inverting same-processor same-address order — so
        # reordered stores clamp their effective perform interval to it.
        self._moved_line_cisn: dict[int, int] = {}
        # Interval-timestamp floor.  When this core's own transaction
        # commits at cycle T, any remote interval it conflict-terminates is
        # stamped T — so the interval containing this access must stamp
        # strictly later, or the (timestamp, core_id) tie-break could
        # replay the dependent interval first (hypothesis seed 1679).
        # config.interval_timestamp_floor=False (fuzzer test hook only)
        # re-introduces the pre-fix behavior.
        self._timestamp_floor = 0
        # Exact per-interval line sets shadowing the Bloom signatures —
        # statistics only (signature aliasing detection); correctness
        # always goes through the signatures.
        self._exact_read_lines: set[int] = set()
        self._exact_write_lines: set[int] = set()

    # ---------------------------------------------------- core-side events

    def on_perform(self, dyn: DynInstr, cycle: int, out_of_order: bool) -> None:
        """Record the perform event: stamp PISN, sample the Snoop Table and
        insert the line address into the interval signatures."""
        del out_of_order  # metric collectors use it; the recorder does not
        line = dyn.addr // self.line_bytes
        self._pisn[dyn.seq] = self.cisn
        if self.snoop_table is not None:
            self._snoop_sample[dyn.seq] = self.snoop_table.sample(line)
        self._insert_signature(dyn, line)
        self.performs_in_interval += 1

    def _insert_signature(self, dyn: DynInstr, line: int) -> None:
        if dyn.opcode is Opcode.LOAD:
            self.read_sig.insert(line)
            self._exact_read_lines.add(line)
        elif dyn.opcode is Opcode.STORE:
            self.write_sig.insert(line)
            self._exact_write_lines.add(line)
        else:  # RMW reads and writes
            self.read_sig.insert(line)
            self.write_sig.insert(line)
            self._exact_read_lines.add(line)
            self._exact_write_lines.add(line)

    def on_count(self, entry: TraqEntry, cycle: int) -> None:
        """The in-order counting step (Section 3.3): classify the entry as
        in-order or reordered and extend the interval log accordingly."""
        if entry.is_filler:
            self.block_size += entry.nmi
            self.counted_in_interval += entry.nmi
            self.stats.instructions_counted += entry.nmi
            self._check_size_cap(cycle)
            return

        dyn = entry.dyn
        pisn = self._pisn.pop(dyn.seq)
        snapshot = (self._snoop_sample.pop(dyn.seq, None)
                    if self.snoop_table is not None else None)
        line = dyn.addr // self.line_bytes

        reordered = False
        if pisn != self.cisn:
            if self.snoop_table is None:
                reordered = True  # RelaxReplay_Base
            elif self.snoop_table.conflicts_since(line, snapshot):
                reordered = True
            else:
                # Perform event moved across interval boundaries: the access
                # now belongs to the current interval, so its address joins
                # the current signatures (Section 4.2) and later same-line
                # patched stores may not land before this interval.
                self._insert_signature(dyn, line)
                self._moved_line_cisn[line] = self.cisn
                self.stats.moved_across_intervals += 1

        self.stats.mem_counted += 1
        self.stats.instructions_counted += entry.nmi + 1
        self.counted_in_interval += entry.nmi + 1

        if not reordered:
            self.stats.inorder_mem += 1
            self.block_size += entry.nmi + 1
        else:
            self.block_size += entry.nmi
            self._flush_block()
            self._append(self._reordered_entry(dyn, pisn))
        self._check_size_cap(cycle)

    def _reordered_entry(self, dyn: DynInstr, pisn: int) -> LogEntry:
        if dyn.opcode is Opcode.LOAD:
            self.stats.reordered_loads += 1
            return ReorderedLoad(dyn.mem_value)
        # Stores/RMWs are patched back `offset` intervals during replay.
        # Clamp the target so the relocated write never jumps over a moved
        # same-line access counted earlier (which replays in its counting
        # interval but performed *before* this store).  Clamping is safe:
        # the first remote access to observe this store's value necessarily
        # arrived after that moved access was counted (or the Snoop Table
        # would have caught it), hence after the clamped interval terminated.
        line = dyn.addr // self.line_bytes
        effective_pisn = max(pisn, self._moved_line_cisn.get(line, -1))
        offset = self.cisn - effective_pisn
        if offset >= (1 << 16):
            raise SimulationError(
                f"reordered-store offset {offset} overflows the log field")
        if dyn.opcode is Opcode.STORE:
            self.stats.reordered_stores += 1
            return ReorderedStore(dyn.addr, dyn.source_value("data"), offset)
        self.stats.reordered_rmws += 1
        new_value = eval_rmw(dyn.instr.rmw_op, dyn.mem_value,
                             dyn.src_values.get("data"), dyn.instr.imm)
        return ReorderedRmw(dyn.mem_value, new_value, dyn.addr, offset)

    # --------------------------------------------------- bus-side events

    def on_transaction(self, event: SnoopEvent) -> None:
        """Observe a committed coherence transaction: update the Snoop
        Table and terminate the interval on a signature conflict."""
        if event.requester == self.core_id:
            if self.config.interval_timestamp_floor:
                self._timestamp_floor = max(self._timestamp_floor,
                                            event.cycle + 1)
            return
        if self.dependence_tracker is not None:
            # Weak ordering edge: the requester follows everything this
            # processor already closed (see DependenceTracker).
            self.dependence_tracker.record_observation(
                self.core_id, self.cisn - 1, event.requester)
        if self.snoop_table is not None:
            self.snoop_table.observe(event.line_addr)
            self.stats.snoop_observed += 1
        conflict = self.write_sig.may_contain(event.line_addr)
        if not conflict and event.is_write:
            conflict = self.read_sig.may_contain(event.line_addr)
        if conflict:
            self.stats.conflict_terminations += 1
            if (event.line_addr not in self._exact_write_lines
                    and not (event.is_write and event.line_addr
                             in self._exact_read_lines)):
                # The signatures fired but the exact sets say the line was
                # never touched: a pure Bloom false positive cut an
                # interval early (rare-state coverage signal).
                self.stats.signature_alias_terminations += 1
            lines = self.stats.conflict_lines
            lines[event.line_addr] = lines.get(event.line_addr, 0) + 1
            if self.dependence_tracker is not None:
                # The terminating interval is the dependence *source*; the
                # requester's access performs into its current interval.
                self.dependence_tracker.record_conflict(
                    self.core_id, self.cisn, event.requester)
            self._terminate_interval(event.cycle, "conflict")

    def on_dirty_eviction(self, cycle: int, core_id: int, line_addr: int) -> None:
        """Section 4.3: conservatively account for an owned-line eviction
        (Snoop Table bump and, in directory mode, interval closure)."""
        if core_id != self.core_id:
            return
        if (self.snoop_table is not None
                and self.config.dirty_eviction_snoop_increment):
            self.snoop_table.observe(line_addr)
        if self.config.dirty_eviction_terminates and (
                self.read_sig.may_contain(line_addr)
                or self.write_sig.may_contain(line_addr)):
            # Directory mode: we can no longer observe conflicts on this
            # line, so close the interval now — any future access to it is
            # thereby ordered after us.
            self.stats.eviction_terminations += 1
            self._terminate_interval(cycle, "eviction")

    # -------------------------------------------------- interval handling

    def _check_size_cap(self, cycle: int) -> None:
        cap = self.config.max_interval_instructions
        if cap is not None and self.counted_in_interval >= cap:
            self.stats.size_terminations += 1
            self._terminate_interval(cycle, "size-cap")

    def _terminate_interval(self, cycle: int, reason: str) -> None:
        self._flush_block()
        if self.entries_in_interval == 0 and self.performs_in_interval == 0:
            # Nothing happened: no ordering obligation, keep CISN stable so
            # logged frames stay consecutive.
            return
        timestamp = (max(cycle, self._timestamp_floor)
                     if self.config.interval_timestamp_floor else cycle)
        self.stats.signature_set_bits += (self.read_sig.set_bits
                                          + self.write_sig.set_bits)
        if self.tracer is not None:
            self.tracer.emit(ChunkCutEvent(
                cycle=timestamp, core_id=self.core_id, variant=self.name,
                cisn=self.cisn, reason=reason,
                entries=self.entries_in_interval,
                instructions=self.counted_in_interval))
        self._append(IntervalFrame(self.cisn, timestamp))
        self.stats.frames += 1
        self.cisn += 1
        self.read_sig.clear()
        self.write_sig.clear()
        self._exact_read_lines.clear()
        self._exact_write_lines.clear()
        self.counted_in_interval = 0
        self.performs_in_interval = 0
        self.entries_in_interval = 0

    def _flush_block(self) -> None:
        if self.block_size > 0:
            self._append(InorderBlock(self.block_size))
            self.stats.inorder_blocks += 1
            self.block_size = 0

    def _append(self, entry: LogEntry) -> None:
        self.entries.append(entry)
        self.entries_in_interval += 1
        bits = entry_bit_size(entry, self.config)
        self.stats.log_bits += bits
        kind = type(entry).__name__
        by_type = self.stats.entry_bits_by_type
        by_type[kind] = by_type.get(kind, 0) + bits

    def finish(self, cycle: int) -> None:
        """Terminate the final interval at the end of execution."""
        if self._pisn:
            raise SimulationError(
                f"recorder {self.name} core {self.core_id}: "
                f"{len(self._pisn)} accesses performed but never counted")
        self._terminate_interval(cycle, "end")
