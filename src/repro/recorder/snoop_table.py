"""The Snoop Table of RelaxReplay_Opt (Section 4.2, Figure 8).

Two (configurably more) arrays of wrapping counters, each indexed by a
different H3 hash of the snooped line address.  When the processor observes
a coherence transaction, both counters increment.  A memory access samples
its two counters at *perform* time; at *counting* time the counters are
read again: if **all** of them changed, some transaction may have conflicted
with the access's address between the two events and the access is declared
reordered.  If none — or only some, which can only be aliasing — changed,
the perform event is safely moved to the counting event.

This check is conservative (aliasing in all arrays at once gives a false
positive, which merely logs an extra value) but never misses a true
conflict, except for the astronomically unlikely full counter wrap-around
between the two samples, which the paper sizes the counters against
(2x64x16 bits).
"""

from __future__ import annotations

from ..common.config import RecorderConfig
from ..common.h3 import make_h3_family

__all__ = ["SnoopTable"]

#: Shared per-address slot cache, keyed by the hash-family identity.  All
#: snoop tables built from the same recorder config and seed hash an
#: address to the same slots, so one cache serves every processor.
_SLOT_CACHES: dict[tuple[int, int, int], dict[int, tuple[int, ...]]] = {}


class SnoopTable:
    """Counting snoop filter with multi-hash aliasing rejection."""

    def __init__(self, config: RecorderConfig, *, seed: int = 0):
        self.num_arrays = config.snoop_table_arrays
        self.entries = config.snoop_table_entries
        self.counter_mask = (1 << config.snoop_table_counter_bits) - 1
        out_bits = self.entries.bit_length() - 1
        self._hashes = make_h3_family(self.num_arrays, out_bits, seed=seed + 101)
        self._counters = [[0] * self.entries for _ in range(self.num_arrays)]
        self.observed = 0
        # Per-address slot tuples are pure in the (memoized) hashes; caching
        # them keeps the per-transaction observe path free of hash calls.
        self._slots = _SLOT_CACHES.setdefault(
            (self.num_arrays, self.entries, seed), {})

    def _slots_for(self, line_addr: int) -> tuple[int, ...]:
        slots = self._slots.get(line_addr)
        if slots is None:
            slots = tuple(h(line_addr) for h in self._hashes)
            self._slots[line_addr] = slots
        return slots

    def observe(self, line_addr: int) -> None:
        """Record an incoming coherence transaction (or a conservative dirty
        eviction, Section 4.3)."""
        mask = self.counter_mask
        for counters, slot in zip(self._counters, self._slots_for(line_addr)):
            counters[slot] = (counters[slot] + 1) & mask
        self.observed += 1

    def sample(self, line_addr: int) -> tuple[int, ...]:
        """Counter snapshot for an address (stored in the TRAQ Snoop Count
        field at perform time)."""
        return tuple(counters[slot] for counters, slot
                     in zip(self._counters, self._slots_for(line_addr)))

    def conflicts_since(self, line_addr: int, snapshot: tuple[int, ...]) -> bool:
        """True if a conflicting transaction may have been observed since
        ``snapshot`` was taken — i.e. *all* counters changed."""
        current = self.sample(line_addr)
        return all(now != then for now, then in zip(current, snapshot))

    @property
    def size_bits(self) -> int:
        return (self.num_arrays * self.entries
                * (self.counter_mask.bit_length()))
