"""RelaxReplay memory race recorder: TRAQ, Snoop Table, interval logs."""

from .logfmt import (
    Dummy,
    EntryType,
    InorderBlock,
    IntervalFrame,
    LogEntry,
    ReorderedLoad,
    ReorderedRmw,
    ReorderedStore,
    decode_log,
    encode_log,
    entry_bit_size,
)
from .mrr import RecorderStats, RelaxReplayRecorder
from .ordering import DependenceTracker, IntervalEdge
from .snoop_table import SnoopTable
from .traq import TraqEntry, TrackingQueue

__all__ = [
    "Dummy",
    "EntryType",
    "InorderBlock",
    "IntervalFrame",
    "LogEntry",
    "ReorderedLoad",
    "ReorderedRmw",
    "ReorderedStore",
    "decode_log",
    "encode_log",
    "entry_bit_size",
    "RecorderStats",
    "DependenceTracker",
    "IntervalEdge",
    "RelaxReplayRecorder",
    "SnoopTable",
    "TraqEntry",
    "TrackingQueue",
]
