"""H3 universal hash family.

The H3 family hashes an ``n``-bit key to an ``m``-bit value by XOR-ing
together per-bit random masks: ``h(x) = XOR over set bits i of x of Q[i]``,
where ``Q`` is an ``n x m`` matrix of random ``m``-bit words.  It is the hash
family the RelaxReplay paper uses for its Bloom-filter read/write signatures
(Table 1: "4 x 256-bit Bloom filters with H3 hash") and is also used here for
the Snoop Table of RelaxReplay_Opt.

H3 is a good fit for hardware models because each hash is a tree of XOR
gates, and for simulation because it is cheap, deterministic and has strong
universality guarantees.
"""

from __future__ import annotations

import random
from typing import Sequence

__all__ = ["H3Hash", "make_h3_family"]

_DEFAULT_KEY_BITS = 64


class H3Hash:
    """A single H3 hash function from ``key_bits``-bit keys to ``[0, 2**out_bits)``.

    Instances are deterministic given ``(key_bits, out_bits, seed)``, so
    simulations are reproducible run to run.
    """

    __slots__ = ("key_bits", "out_bits", "_matrix", "_cache")

    def __init__(self, out_bits: int, *, key_bits: int = _DEFAULT_KEY_BITS, seed: int = 0):
        if out_bits <= 0:
            raise ValueError(f"out_bits must be positive, got {out_bits}")
        if key_bits <= 0:
            raise ValueError(f"key_bits must be positive, got {key_bits}")
        self.key_bits = key_bits
        self.out_bits = out_bits
        rng = random.Random((seed << 16) ^ (out_bits << 8) ^ key_bits)
        mask = (1 << out_bits) - 1
        # One random out_bits-wide mask per input bit.
        self._matrix = tuple(rng.getrandbits(out_bits) & mask for _ in range(key_bits))
        # The hash is pure and the key population (line addresses) is small
        # and heavily repeated, so memoize computed values.
        self._cache: dict[int, int] = {}

    def __call__(self, key: int) -> int:
        """Hash ``key`` (negative keys are rejected; wider keys are truncated)."""
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if key < 0:
            raise ValueError(f"H3 keys must be non-negative, got {key}")
        bits = key & ((1 << self.key_bits) - 1)
        acc = 0
        matrix = self._matrix
        i = 0
        while bits:
            if bits & 1:
                acc ^= matrix[i]
            bits >>= 1
            i += 1
        self._cache[key] = acc
        return acc

    @property
    def range_size(self) -> int:
        """Number of distinct output values (``2**out_bits``)."""
        return 1 << self.out_bits

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"H3Hash(key_bits={self.key_bits}, out_bits={self.out_bits})"


def make_h3_family(count: int, out_bits: int, *, key_bits: int = _DEFAULT_KEY_BITS,
                   seed: int = 0) -> Sequence[H3Hash]:
    """Create ``count`` independent H3 functions with distinct derived seeds.

    Used wherever the paper calls for "a different hash function for each
    array" (Snoop Table, Figure 8) or one hash per Bloom-filter bank.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    return tuple(
        H3Hash(out_bits, key_bits=key_bits, seed=seed * 7919 + index + 1)
        for index in range(count)
    )
