"""Machine and recorder configuration.

Defaults reproduce Table 1 of the paper ("Architectural parameters"): an
8-core ring-based multicore with a MESI snoopy protocol, 4-way out-of-order
cores with a 176-entry ROB and 2 Ld/St units, 64KB private L1s, a shared L2,
and the RelaxReplay structures (4x256-bit H3 Bloom signatures, 176-entry
TRAQ, 2x64x16-bit Snoop Table, 16-bit CISN).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from .errors import ConfigError

__all__ = [
    "CoherenceProtocol",
    "ConsistencyModel",
    "RecorderMode",
    "CoreConfig",
    "L1Config",
    "L2Config",
    "RingConfig",
    "MemoryConfig",
    "RecorderConfig",
    "ReplayCostConfig",
    "MachineConfig",
]


class ConsistencyModel(enum.Enum):
    """Memory consistency model enforced by the core's issue logic.

    ``SC``  — memory operations issue strictly in program order.
    ``TSO`` — loads may bypass older pending stores (with forwarding); all
              other pairs stay ordered; the write buffer drains FIFO.
    ``RC``  — release consistency: loads and stores issue out of order
              whenever their operands are ready, constrained only by
              acquire/release/fence semantics and same-address ordering.
    """

    SC = "SC"
    TSO = "TSO"
    RC = "RC"


class CoherenceProtocol(enum.Enum):
    """Coherence substrate: snoopy broadcast ring (Table 1) or a MESI
    directory (Section 4.3)."""

    SNOOPY = "snoopy"
    DIRECTORY = "directory"


class RecorderMode(enum.Enum):
    """Which RelaxReplay design the MRR implements (Section 3.2)."""

    BASE = "base"  # no Snoop Table; PISN != CISN  =>  reordered
    OPT = "opt"    # Snoop Table filters accesses nobody observed


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (Table 1, "Core")."""

    issue_width: int = 4
    rob_entries: int = 176
    lsq_entries: int = 128
    ldst_units: int = 2
    write_buffer_entries: int = 16
    alu_latency: int = 1
    clock_ghz: float = 2.0

    def validate(self) -> None:
        for name in ("issue_width", "rob_entries", "lsq_entries", "ldst_units",
                     "write_buffer_entries", "alu_latency"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"CoreConfig.{name} must be positive")
        if self.clock_ghz <= 0:
            raise ConfigError("CoreConfig.clock_ghz must be positive")


@dataclass(frozen=True)
class L1Config:
    """Private L1 data cache (Table 1, "L1 Cache")."""

    size_kb: int = 64
    assoc: int = 4
    line_bytes: int = 32
    mshr_entries: int = 64
    hit_cycles: int = 2

    @property
    def num_sets(self) -> int:
        sets = self.size_kb * 1024 // (self.assoc * self.line_bytes)
        return max(sets, 1)

    def validate(self) -> None:
        for name in ("size_kb", "assoc", "line_bytes", "mshr_entries", "hit_cycles"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"L1Config.{name} must be positive")
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigError("L1Config.line_bytes must be a power of two")
        if self.size_kb * 1024 % (self.assoc * self.line_bytes):
            raise ConfigError("L1 size must be divisible by assoc * line size")


@dataclass(frozen=True)
class L2Config:
    """Shared L2 (Table 1, "L2 Cache"); modelled as an idealised backstop
    with a fixed average round-trip latency."""

    size_kb_per_core: int = 512
    assoc: int = 16
    line_bytes: int = 32
    mshr_entries: int = 64
    roundtrip_cycles: int = 12

    def validate(self) -> None:
        for name in ("size_kb_per_core", "assoc", "line_bytes",
                     "mshr_entries", "roundtrip_cycles"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"L2Config.{name} must be positive")


@dataclass(frozen=True)
class RingConfig:
    """Ring interconnect (Table 1, "Ring")."""

    width_bytes: int = 32
    hop_cycles: int = 1

    def validate(self) -> None:
        if self.width_bytes <= 0 or self.hop_cycles <= 0:
            raise ConfigError("RingConfig fields must be positive")


@dataclass(frozen=True)
class MemoryConfig:
    """Main memory behind the L2 (Table 1, "Memory")."""

    roundtrip_cycles: int = 150

    def validate(self) -> None:
        if self.roundtrip_cycles <= 0:
            raise ConfigError("MemoryConfig.roundtrip_cycles must be positive")


@dataclass(frozen=True)
class RecorderConfig:
    """RelaxReplay MRR parameters (Table 1, "RelaxReplay Parameters")."""

    mode: RecorderMode = RecorderMode.OPT
    # Read & write signatures: each 4 x 256-bit Bloom filters with H3 hash.
    signature_banks: int = 4
    signature_bits_per_bank: int = 256
    # TRAQ: 176 entries.
    traq_entries: int = 176
    nmi_bits: int = 4
    cisn_bits: int = 16
    # Snoop Table (RelaxReplay_Opt only): 2 arrays, 64 entries each, 16-bit.
    snoop_table_arrays: int = 2
    snoop_table_entries: int = 64
    snoop_table_counter_bits: int = 16
    # Maximum interval size in instructions; None means unbounded ("INF").
    max_interval_instructions: int | None = None
    # Log buffer: 8 cache lines (used for the hardware-cost summary only).
    log_buffer_lines: int = 8
    # Conservative Snoop Table increment on dirty evictions (Section 4.3);
    # required for directory protocols, optional under snoopy coherence.
    dirty_eviction_snoop_increment: bool = False
    # Conservatively terminate the current interval when an owned line
    # whose address is in the current signatures is evicted.  Required
    # under directory coherence, where the evicting core stops observing
    # transactions on the line (this reproduction's interval-ordering
    # adaptation of Section 4.3; see DESIGN.md).
    dirty_eviction_terminates: bool = False
    # Floor the interval timestamp past this core's own commits so the
    # (timestamp, core_id) tie-break can never replay a dependent interval
    # before the interval its Opt-rescued access performed in (hypothesis
    # seed 1679).  Disabling this re-introduces that determinism bug; the
    # switch exists ONLY as a fuzzer/CI test hook proving the adversarial
    # pipeline catches and minimizes it.  Never disable it in real runs.
    interval_timestamp_floor: bool = True

    def validate(self) -> None:
        for name in ("signature_banks", "signature_bits_per_bank", "traq_entries",
                     "nmi_bits", "cisn_bits", "snoop_table_arrays",
                     "snoop_table_entries", "snoop_table_counter_bits",
                     "log_buffer_lines"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"RecorderConfig.{name} must be positive")
        if self.max_interval_instructions is not None and self.max_interval_instructions <= 0:
            raise ConfigError("max_interval_instructions must be positive or None")
        if self.signature_bits_per_bank & (self.signature_bits_per_bank - 1):
            raise ConfigError("signature_bits_per_bank must be a power of two")
        if self.snoop_table_entries & (self.snoop_table_entries - 1):
            raise ConfigError("snoop_table_entries must be a power of two")

    @property
    def max_nmi(self) -> int:
        """Largest non-memory-instruction count one TRAQ entry can carry."""
        return (1 << self.nmi_bits) - 1

    def traq_entry_bytes(self) -> float:
        """Per-entry TRAQ storage, following Section 5.1's accounting.

        The paper's machine stores 32-bit addresses and values, giving
        exactly 14.5B per entry for RelaxReplay_Opt (32 addr + 32 value +
        16 PISN + 2x16 Snoop Count + 4 NMI = 116 bits) and 10.5B for Base
        (84 bits) — i.e. the quoted 2.5KB / 1.8KB for a 176-entry TRAQ.
        (The *simulated* log format carries 64-bit values, since this
        reproduction's ISA is 64-bit; the hardware-cost model keeps the
        paper's field widths so Table 1 derivations match.)
        """
        bits = 32 + 32 + self.cisn_bits + self.nmi_bits
        if self.mode is RecorderMode.OPT:
            bits += self.snoop_table_arrays * self.snoop_table_counter_bits
        return bits / 8


@dataclass(frozen=True)
class ReplayCostConfig:
    """Cost model for replay-time estimation (Section 5.4).

    The paper replays sequentially with an OS module that enforces interval
    order, programs a per-InorderBlock instruction-count interrupt, and
    emulates reordered instructions.  These constants model those costs.

    ``user_cpi`` is, by default, *relative*: native replay runs on the same
    hardware as recording, so user cycles are modelled as ``instructions x
    user_cpi x recorded-per-core-CPI`` (a single replaying core is slightly
    faster per instruction than the contended recording, hence the default
    0.75).  Set ``relative_user_cpi=False`` to interpret ``user_cpi`` as
    absolute cycles per instruction.  The OS constants were calibrated so
    the 8-core workload averages land near the paper's Figure 13 range
    (Opt: 6.7x-8.5x recording; Base: 8.6x-26.2x) given this reproduction's
    denser interval structure; see EXPERIMENTS.md.
    """

    user_cpi: float = 0.75
    relative_user_cpi: bool = True
    interval_dispatch_cycles: int = 50
    inorder_block_interrupt_cycles: int = 20
    block_flush_user_cycles: int = 5
    reordered_load_cycles: int = 20
    reordered_store_cycles: int = 40
    dummy_entry_cycles: int = 30

    def validate(self) -> None:
        if self.user_cpi <= 0:
            raise ConfigError("ReplayCostConfig.user_cpi must be positive")
        for name in ("interval_dispatch_cycles", "inorder_block_interrupt_cycles",
                     "block_flush_user_cycles", "reordered_load_cycles",
                     "reordered_store_cycles", "dummy_entry_cycles"):
            if getattr(self, name) < 0:
                raise ConfigError(f"ReplayCostConfig.{name} must be non-negative")


@dataclass(frozen=True)
class MachineConfig:
    """Top-level machine description (the whole of Table 1)."""

    num_cores: int = 8
    consistency: ConsistencyModel = ConsistencyModel.RC
    protocol: CoherenceProtocol = CoherenceProtocol.SNOOPY
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: L1Config = field(default_factory=L1Config)
    l2: L2Config = field(default_factory=L2Config)
    ring: RingConfig = field(default_factory=RingConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    recorder: RecorderConfig = field(default_factory=RecorderConfig)
    replay_cost: ReplayCostConfig = field(default_factory=ReplayCostConfig)
    seed: int = 0

    def validate(self) -> "MachineConfig":
        if self.num_cores <= 0:
            raise ConfigError("MachineConfig.num_cores must be positive")
        self.core.validate()
        self.l1.validate()
        self.l2.validate()
        self.ring.validate()
        self.memory.validate()
        self.recorder.validate()
        self.replay_cost.validate()
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ConfigError("L1 and L2 must use the same line size")
        return self

    def with_recorder(self, **changes) -> "MachineConfig":
        """Return a copy with recorder fields replaced (sweep convenience)."""
        return replace(self, recorder=replace(self.recorder, **changes))

    def with_cores(self, num_cores: int) -> "MachineConfig":
        """Return a copy with a different core count (scalability sweeps)."""
        return replace(self, num_cores=num_cores)

    def mrr_size_bytes(self) -> float:
        """Per-processor MRR storage, mirroring Section 5.1's accounting.

        The paper computes 2.3KB for RelaxReplay_Base (1.8KB of TRAQ) and
        3.3KB for RelaxReplay_Opt (2.5KB of TRAQ).
        """
        rec = self.recorder
        signatures = 2 * rec.signature_banks * rec.signature_bits_per_bank / 8
        traq = rec.traq_entries * rec.traq_entry_bytes()
        fixed = (64 + 32 + rec.cisn_bits) / 8  # global time, block size, CISN
        log_buffer = rec.log_buffer_lines * self.l1.line_bytes
        total = signatures + traq + fixed + log_buffer
        if rec.mode is RecorderMode.OPT:
            total += (rec.snoop_table_arrays * rec.snoop_table_entries
                      * rec.snoop_table_counter_bits / 8)
        return total
