"""Bit-level serialization used by the interval-log format.

The paper reports log sizes in *bits* per kilo-instruction (Figure 11), so
the log encoder packs entries at bit granularity rather than rounding every
field up to a byte.  :class:`BitWriter` and :class:`BitReader` implement a
simple MSB-first bit stream with fixed-width unsigned fields, which is all
the log format (Figure 6(c)) needs.
"""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Append-only MSB-first bit stream."""

    __slots__ = ("_chunks", "_acc", "_acc_bits", "_total_bits")

    def __init__(self) -> None:
        self._chunks = bytearray()
        self._acc = 0
        self._acc_bits = 0
        self._total_bits = 0

    def write(self, value: int, width: int) -> None:
        """Append ``value`` as an unsigned ``width``-bit field."""
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if value < 0 or value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._acc = (self._acc << width) | value
        self._acc_bits += width
        self._total_bits += width
        while self._acc_bits >= 8:
            self._acc_bits -= 8
            self._chunks.append((self._acc >> self._acc_bits) & 0xFF)
        self._acc &= (1 << self._acc_bits) - 1

    @property
    def bit_length(self) -> int:
        """Exact number of bits written so far."""
        return self._total_bits

    def getvalue(self) -> bytes:
        """Return the stream as bytes; the final partial byte is zero-padded."""
        out = bytes(self._chunks)
        if self._acc_bits:
            out += bytes([(self._acc << (8 - self._acc_bits)) & 0xFF])
        return out


class BitReader:
    """Sequential reader matching :class:`BitWriter`'s layout."""

    __slots__ = ("_data", "_bit_pos", "_bit_len")

    def __init__(self, data: bytes, bit_len: int | None = None):
        self._data = data
        self._bit_pos = 0
        self._bit_len = len(data) * 8 if bit_len is None else bit_len
        if self._bit_len > len(data) * 8:
            raise ValueError("bit_len exceeds available data")

    def read(self, width: int) -> int:
        """Consume and return the next unsigned ``width``-bit field."""
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if self._bit_pos + width > self._bit_len:
            raise EOFError(
                f"bit stream exhausted: need {width} bits at offset {self._bit_pos}, "
                f"stream has {self._bit_len}")
        value = 0
        pos = self._bit_pos
        remaining = width
        while remaining:
            byte = self._data[pos >> 3]
            offset = pos & 7
            take = min(8 - offset, remaining)
            shift = 8 - offset - take
            value = (value << take) | ((byte >> shift) & ((1 << take) - 1))
            pos += take
            remaining -= take
        self._bit_pos = pos
        return value

    @property
    def bits_remaining(self) -> int:
        """Bits left before the stream (as delimited by ``bit_len``) ends."""
        return self._bit_len - self._bit_pos

    @property
    def exhausted(self) -> bool:
        """True when every bit has been consumed."""
        return self._bit_pos >= self._bit_len
