"""Light-weight statistics helpers used by the simulator and the harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["OnlineStats", "Histogram", "geometric_mean", "ratio"]


class OnlineStats:
    """Streaming count/mean/min/max/variance accumulator (Welford)."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum", "total")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def add_repeat(self, value: float, count: int) -> None:
        """Fold ``count`` observations of the same ``value`` in O(1).

        This is the jump-aware path of the TRAQ occupancy sampler: a
        fast-forwarded simulation observes the same queue depth at every
        skipped sample point, so the batch folds in with the Chan/Welford
        *merge* formula (a batch of identical values has mean ``value`` and
        zero M2) instead of ``count`` sequential updates.  Count, total,
        min and max are exact; mean and variance are mathematically
        identical to repeated :meth:`add` calls (floats may differ in the
        last ulp, which is why every kernel must use this same entry
        point for catch-up sampling).
        """
        if count <= 0:
            if count < 0:
                raise ValueError(f"add_repeat count must be >= 0, got {count}")
            return
        if count == 1:
            self.add(value)
            return
        combined = self.count + count
        delta = value - self._mean
        self._m2 += delta * delta * self.count * count / combined
        self._mean += delta * count / combined
        self.count = combined
        self.total += value * count
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> None:
        """Fold ``other`` into ``self`` (parallel Welford merge).

        Merging an empty accumulator — on either side, or both — is a
        no-op / copy and never raises or corrupts the min/max sentinels.
        """
        if not other.count:
            return
        if not self.count:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            self.total = other.total
            return
        combined = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / combined
        self._mean += delta * other.count / combined
        self.count = combined
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"OnlineStats(count={self.count}, mean={self.mean:.4g}, "
                f"min={self.minimum:.4g}, max={self.maximum:.4g})")


@dataclass
class Histogram:
    """Fixed-width binned histogram (Figure 12(b)'s TRAQ occupancy bins)."""

    bin_width: int = 10
    counts: dict[int, int] = field(default_factory=dict)
    samples: int = 0

    def __post_init__(self) -> None:
        if self.bin_width <= 0:
            raise ValueError(
                f"Histogram bin_width must be positive, got {self.bin_width}")

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"Histogram values must be non-negative, got {value}")
        bin_index = int(value) // self.bin_width
        self.counts[bin_index] = self.counts.get(bin_index, 0) + 1
        self.samples += 1

    def add_repeat(self, value: float, count: int) -> None:
        """Fold ``count`` observations of ``value`` in O(1); bin counts are
        integers, so this is bit-identical to ``count`` :meth:`add` calls."""
        if count <= 0:
            if count < 0:
                raise ValueError(f"add_repeat count must be >= 0, got {count}")
            return
        if value < 0:
            raise ValueError(f"Histogram values must be non-negative, got {value}")
        bin_index = int(value) // self.bin_width
        self.counts[bin_index] = self.counts.get(bin_index, 0) + count
        self.samples += count

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s bins into ``self``.

        Merging an empty histogram (either side) is safe; merging
        histograms with different bin widths is rejected because the bins
        would not describe the same value ranges.
        """
        if other.samples == 0 and not other.counts:
            return
        if other.bin_width != self.bin_width:
            raise ValueError(
                f"cannot merge histograms with bin widths "
                f"{self.bin_width} and {other.bin_width}")
        for bin_index, count in other.counts.items():
            self.counts[bin_index] = self.counts.get(bin_index, 0) + count
        self.samples += other.samples

    def percentile(self, q: float) -> float:
        """Value below which ``q`` percent of samples fall (bin-resolution).

        Returns the upper edge of the bin containing the q-th sample.  An
        empty histogram yields 0.0 rather than raising — callers snapshot
        metrics unconditionally, including distributions never observed.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.samples:
            return 0.0
        target = q / 100.0 * self.samples
        running = 0
        last_index = 0
        for bin_index, count in sorted(self.counts.items()):
            running += count
            last_index = bin_index
            if running >= target:
                return float((bin_index + 1) * self.bin_width)
        return float((last_index + 1) * self.bin_width)

    def fraction(self, bin_index: int) -> float:
        """Fraction of samples falling in ``[bin*width, (bin+1)*width)``."""
        if not self.samples:
            return 0.0
        return self.counts.get(bin_index, 0) / self.samples

    def fractions(self) -> dict[int, float]:
        """All non-empty bins as ``{bin_index: fraction}``, sorted by bin."""
        return {index: count / self.samples
                for index, count in sorted(self.counts.items())} if self.samples else {}

    def cumulative_fraction(self, upto_value: float) -> float:
        """Fraction of samples with value < ``upto_value`` (bin-resolution)."""
        if not self.samples:
            return 0.0
        limit = int(upto_value) // self.bin_width
        return sum(count for index, count in self.counts.items() if index < limit) / self.samples


def geometric_mean(values) -> float:
    """Geometric mean; zero inputs are clamped to a tiny epsilon."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    log_sum = sum(math.log(max(value, 1e-12)) for value in values)
    return math.exp(log_sum / len(values))


def ratio(numerator: float, denominator: float) -> float:
    """Safe division: returns 0.0 for a zero denominator."""
    return numerator / denominator if denominator else 0.0
