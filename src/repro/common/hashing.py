"""Stable, process-independent hashing of configuration objects.

The parallel experiment runner addresses its on-disk result cache by a
digest of the run description (workload, machine config, recorder
variants, work scale, seed, ...).  For that digest to be usable *across*
interpreter runs it must not depend on anything process-local:

* Python's built-in ``hash()`` is salted per process for strings
  (``PYTHONHASHSEED``), so it never appears here;
* ``repr()`` of arbitrary objects can embed ``id()`` addresses, so
  canonicalization only accepts a closed set of JSON-able shapes;
* dictionaries are serialized with sorted keys, making the digest
  independent of insertion/iteration order.

:func:`canonical_json` renders dataclasses, enums, dicts, sequences and
scalars into a deterministic JSON string; :func:`stable_digest` hashes it
with SHA-256.  Anything outside that closed set raises ``TypeError``
rather than silently hashing an address.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math

__all__ = ["canonicalize", "canonical_json", "stable_digest",
           "generation_tag"]


def canonicalize(obj):
    """Reduce ``obj`` to plain JSON-able data with deterministic ordering."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if math.isnan(obj) or math.isinf(obj):
            raise TypeError(f"cannot canonicalize non-finite float {obj!r}")
        return obj
    if isinstance(obj, enum.Enum):
        return obj.value
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {field.name: canonicalize(getattr(obj, field.name))
                for field in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        out = {}
        for key in obj:
            if isinstance(key, enum.Enum):
                name = str(key.value)
            elif isinstance(key, (str, int, float, bool)):
                name = str(key)
            else:
                raise TypeError(f"cannot canonicalize dict key {key!r}")
            out[name] = canonicalize(obj[key])
        return {name: out[name] for name in sorted(out)}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        items = [canonicalize(item) for item in obj]
        return sorted(items, key=lambda item: json.dumps(item, sort_keys=True))
    raise TypeError(f"cannot canonicalize {type(obj).__name__} value {obj!r}")


def canonical_json(obj) -> str:
    """Deterministic JSON text of :func:`canonicalize`'s output."""
    return json.dumps(canonicalize(obj), sort_keys=True,
                      separators=(",", ":"))


def stable_digest(obj, *, length: int = 32) -> str:
    """Hex SHA-256 digest of ``obj``'s canonical JSON (stable across
    interpreter runs, ``PYTHONHASHSEED`` values and dict orderings)."""
    digest = hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()
    return digest[:length]


def generation_tag(salt: str) -> str:
    """Short digest naming a cache *generation* (a code-version salt).

    Cache stores record this tag next to every entry so eviction can drop
    whole stale generations (``CacheStore.gc(keep=...)``) without parsing
    entry bodies.  The tag is derived from the same salt that is folded
    into every content address, so "different generation" always implies
    "different keys" as well — GC is an optimization, never a correctness
    requirement.
    """
    return stable_digest({"generation": salt}, length=12)
