"""Shared infrastructure: hashing, signatures, bit streams, config, stats."""

from .bits import BitReader, BitWriter
from .bloom import BloomSignature
from .config import (
    CoherenceProtocol,
    ConsistencyModel,
    CoreConfig,
    L1Config,
    L2Config,
    MachineConfig,
    MemoryConfig,
    RecorderConfig,
    RecorderMode,
    ReplayCostConfig,
    RingConfig,
)
from .errors import (
    ConfigError,
    LogFormatError,
    ReplayDivergenceError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from .h3 import H3Hash, make_h3_family
from .hashing import canonical_json, canonicalize, stable_digest
from .stats import Histogram, OnlineStats, geometric_mean, ratio

__all__ = [
    "BitReader",
    "CoherenceProtocol",
    "BitWriter",
    "BloomSignature",
    "ConsistencyModel",
    "CoreConfig",
    "L1Config",
    "L2Config",
    "MachineConfig",
    "MemoryConfig",
    "RecorderConfig",
    "RecorderMode",
    "ReplayCostConfig",
    "RingConfig",
    "ConfigError",
    "LogFormatError",
    "ReplayDivergenceError",
    "ReproError",
    "SimulationError",
    "WorkloadError",
    "H3Hash",
    "make_h3_family",
    "canonical_json",
    "canonicalize",
    "stable_digest",
    "Histogram",
    "OnlineStats",
    "geometric_mean",
    "ratio",
]
