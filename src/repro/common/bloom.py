"""Bloom-filter address signatures.

Chunk/interval-based memory race recorders summarise the addresses read and
written by the current interval in Bloom-filter *signatures* (Section 2 of the
paper).  The paper's configuration (Table 1) is "4 x 256-bit Bloom filters
with H3 hash" per signature: four independent banks, each 256 bits wide with
its own H3 hash function.  Inserting an address sets one bit in every bank;
an address *may* be present only if its bit is set in every bank.

Bloom filters never produce false negatives, so a conflicting coherence
transaction is never missed; false positives merely terminate intervals
early, which costs log space but not correctness.  Both properties are relied
on by the recorder and checked by the test suite.
"""

from __future__ import annotations

from .h3 import make_h3_family

__all__ = ["BloomSignature"]

#: Shared per-address mask cache, keyed by the hash-family identity
#: ``(banks, bits_per_bank, seed)``.  Recorders on every processor use the
#: same seed, so all their signatures resolve an address to the same bank
#: masks — one shared cache amortizes the hash work across the machine
#: instead of once per signature object.
_MASK_CACHES: dict[tuple[int, int, int], dict[int, tuple[int, ...]]] = {}


class BloomSignature:
    """A banked Bloom filter over (line) addresses.

    Parameters
    ----------
    banks:
        Number of independent hash banks (the paper uses 4).
    bits_per_bank:
        Width of each bank in bits; must be a power of two (the paper uses
        256).
    seed:
        Seed selecting the H3 functions.  Recorders on different processors
        share the same seed so their signatures are comparable, but any seed
        yields a correct filter.
    """

    __slots__ = ("banks", "bits_per_bank", "_hashes", "_bank_bits", "_inserted",
                 "_masks")

    def __init__(self, banks: int = 4, bits_per_bank: int = 256, *, seed: int = 0):
        if banks <= 0:
            raise ValueError(f"banks must be positive, got {banks}")
        if bits_per_bank <= 0 or bits_per_bank & (bits_per_bank - 1):
            raise ValueError(
                f"bits_per_bank must be a positive power of two, got {bits_per_bank}")
        self.banks = banks
        self.bits_per_bank = bits_per_bank
        out_bits = bits_per_bank.bit_length() - 1
        self._hashes = make_h3_family(banks, out_bits, seed=seed)
        # Each bank is an int used as a bitset; Python ints keep this compact.
        self._bank_bits = [0] * banks
        self._inserted = 0
        # The per-bank bit masks of an address are pure in the (memoized)
        # hashes, and the address population is small and heavily repeated:
        # cache the derived mask tuple so the hot insert/membership paths
        # skip the per-bank hash calls entirely.
        self._masks = _MASK_CACHES.setdefault(
            (banks, bits_per_bank, seed), {})

    def _masks_for(self, address: int) -> tuple[int, ...]:
        masks = self._masks.get(address)
        if masks is None:
            masks = tuple(1 << h(address) for h in self._hashes)
            self._masks[address] = masks
        return masks

    def insert(self, address: int) -> None:
        """Insert a line address into the signature."""
        bank_bits = self._bank_bits
        for index, mask in enumerate(self._masks_for(address)):
            bank_bits[index] |= mask
        self._inserted += 1

    def may_contain(self, address: int) -> bool:
        """Membership test: ``False`` is definite, ``True`` may be a false positive."""
        for bits, mask in zip(self._bank_bits, self._masks_for(address)):
            if not bits & mask:
                return False
        return True

    def clear(self) -> None:
        """Empty the signature (done at every interval termination)."""
        for index in range(self.banks):
            self._bank_bits[index] = 0
        self._inserted = 0

    @property
    def is_empty(self) -> bool:
        """True when no address has been inserted since the last :meth:`clear`."""
        return not any(self._bank_bits)

    @property
    def inserted_count(self) -> int:
        """Number of insertions since the last clear (including duplicates)."""
        return self._inserted

    @property
    def size_bits(self) -> int:
        """Total storage of the signature in bits (hardware cost)."""
        return self.banks * self.bits_per_bank

    @property
    def set_bits(self) -> int:
        """Number of set bits across all banks."""
        return sum(bits.bit_count() for bits in self._bank_bits)

    def occupancy(self) -> float:
        """Fraction of set bits across all banks — a saturation indicator."""
        return self.set_bits / (self.banks * self.bits_per_bank)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"BloomSignature(banks={self.banks}, bits_per_bank={self.bits_per_bank}, "
                f"inserted={self._inserted})")
