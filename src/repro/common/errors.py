"""Exception hierarchy for the RelaxReplay reproduction."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "LogFormatError",
    "ReplayDivergenceError",
    "WorkloadError",
    "FuzzError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError):
    """Raised for invalid or inconsistent machine/recorder configuration."""


class SimulationError(ReproError):
    """Raised when the timing simulator reaches an impossible state.

    These indicate bugs (e.g. a coherence invariant violation), never
    legitimate workload behaviour, and are therefore not meant to be caught
    by user code.
    """


class LogFormatError(ReproError):
    """Raised when a recorded interval log cannot be parsed."""


class ReplayDivergenceError(ReproError):
    """Raised when deterministic replay diverges from the recorded execution.

    The paper asserts RelaxReplay logs are sufficient for deterministic
    replay; the replayer in this reproduction verifies that claim and raises
    this error with a precise description of the first divergence if it ever
    fails to hold.

    ``report`` optionally carries a
    :class:`~repro.obs.forensics.DivergenceReport` with the full forensics
    (culprit core, chunk, address, recent trace events).
    """

    def __init__(self, *args, report=None):
        super().__init__(*args)
        self.report = report


class WorkloadError(ReproError):
    """Raised for malformed workload programs (e.g. a jump out of range)."""


class FuzzError(ReproError):
    """Raised for malformed fuzzer genomes or corrupt corpus entries."""
