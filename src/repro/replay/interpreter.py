"""In-order functional interpreter used during deterministic replay.

This is the "native hardware" of the replay machine: InorderBlock entries
are replayed by executing instructions one at a time against the replay
memory image, using the same functional semantics
(:mod:`repro.isa.semantics`) as the recording simulator.  It is also usable
standalone as a golden sequential model for single-threaded programs.
"""

from __future__ import annotations

from ..common.errors import ReplayDivergenceError
from ..isa.instructions import MASK64, NUM_REGS, Instruction, Opcode
from ..isa.program import ThreadProgram
from ..isa.semantics import eval_alu, eval_rmw

__all__ = ["ThreadContext"]


class ThreadContext:
    """Architectural state of one replayed thread."""

    def __init__(self, core_id: int, program: ThreadProgram):
        self.core_id = core_id
        self.program = program
        self.pc = 0
        self.regs = [0] * NUM_REGS
        self.halted = False
        self.instructions_executed = 0
        # Loaded values in program order (for trace-level verification).
        self.load_values: list[int] = []
        # Optional callable ``(kind, addr, value)`` observing every memory
        # access replayed through this context; None (the default) keeps
        # the hot path a single attribute test.  Used by the time-travel
        # inspector (:mod:`repro.obs.inspect`) to index reads and writes.
        self.access_sink = None

    # ------------------------------------------------------------ helpers

    def current_instruction(self) -> Instruction:
        if self.pc >= len(self.program):
            raise ReplayDivergenceError(
                f"core {self.core_id}: replay ran past the end of the program "
                f"(pc={self.pc})")
        return self.program[self.pc]

    def _address(self, instr: Instruction) -> int:
        base = self.regs[instr.addr_base] if instr.addr_base is not None else 0
        return base + instr.addr_offset

    # ---------------------------------------------------------- execution

    def step(self, memory: dict[int, int]) -> None:
        """Execute one instruction natively against ``memory``."""
        instr = self.current_instruction()
        opcode = instr.opcode
        if opcode is Opcode.LOAD:
            address = self._address(instr)
            value = memory.get(address, 0)
            self.regs[instr.dst] = value
            self.load_values.append(value)
            if self.access_sink is not None:
                self.access_sink("load", address, value)
            self.pc += 1
        elif opcode is Opcode.STORE:
            address = self._address(instr)
            value = self.regs[instr.src1] & MASK64
            memory[address] = value
            if self.access_sink is not None:
                self.access_sink("store", address, value)
            self.pc += 1
        elif opcode is Opcode.RMW:
            address = self._address(instr)
            old = memory.get(address, 0)
            operand = self.regs[instr.src1] if instr.src1 is not None else None
            new = eval_rmw(instr.rmw_op, old, operand, instr.imm)
            memory[address] = new
            self.regs[instr.dst] = old
            self.load_values.append(old)
            if self.access_sink is not None:
                self.access_sink("rmw-load", address, old)
                self.access_sink("rmw-store", address, new)
            self.pc += 1
        elif opcode is Opcode.ALU:
            b = self.regs[instr.src2] if instr.src2 is not None else instr.imm
            self.regs[instr.dst] = eval_alu(instr.alu_op, self.regs[instr.src1], b)
            self.pc += 1
        elif opcode is Opcode.MOVI:
            self.regs[instr.dst] = instr.imm & MASK64
            self.pc += 1
        elif opcode is Opcode.BEQZ:
            self.pc = instr.target if self.regs[instr.src1] == 0 else self.pc + 1
        elif opcode is Opcode.BNEZ:
            self.pc = instr.target if self.regs[instr.src1] != 0 else self.pc + 1
        elif opcode is Opcode.JUMP:
            self.pc = instr.target
        elif opcode is Opcode.HALT:
            self.halted = True
            self.pc += 1
        else:  # FENCE / NOP are architectural no-ops during replay
            self.pc += 1
        self.instructions_executed += 1

    # -------------------------------------------- reordered-entry support

    def inject_load_value(self, value: int) -> None:
        """Apply a ReorderedLoad (or patched RMW count) entry: write the
        logged value to the destination register and advance the PC without
        touching memory (Section 3.5)."""
        instr = self.current_instruction()
        if not instr.is_load_like:
            raise ReplayDivergenceError(
                f"core {self.core_id}: ReorderedLoad entry at pc={self.pc} but "
                f"instruction is {instr.opcode.value}")
        if self.access_sink is not None:
            # Address operands are program-order-prior state (read before
            # the destination register is written), so the deterministic
            # replay recomputes the recorded address exactly.
            self.access_sink("injected-load", self._address(instr),
                             value & MASK64)
        self.regs[instr.dst] = value & MASK64
        self.load_values.append(value & MASK64)
        self.pc += 1
        self.instructions_executed += 1

    def skip_store(self) -> None:
        """Apply a Dummy entry: the store's memory effect was patched into an
        earlier interval; just advance the PC (Section 3.5)."""
        instr = self.current_instruction()
        if not instr.is_store_like:
            raise ReplayDivergenceError(
                f"core {self.core_id}: Dummy entry at pc={self.pc} but "
                f"instruction is {instr.opcode.value}")
        self.pc += 1
        self.instructions_executed += 1
