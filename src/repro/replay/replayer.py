"""Sequential deterministic replayer with verification (Section 3.5).

The replayer consumes a recording (one recorder variant's per-core interval
logs), patches reordered stores, orders all intervals by their QuickRec
timestamps, and re-executes the program: InorderBlocks run natively on the
in-order interpreter, ReorderedLoads inject logged values, Dummies skip
patched stores, and PatchedWrites apply relocated memory updates.

Unlike the paper — which asserts determinism — this replayer *verifies* it:
final memory, final architectural registers, and (when a load trace was
captured) every loaded value are compared against the recorded execution,
raising :class:`~repro.common.errors.ReplayDivergenceError` on the first
mismatch.  The property-based test-suite leans on this heavily.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import LogFormatError, ReplayDivergenceError
from ..isa.instructions import MASK64
from ..isa.program import Program
from ..recorder.logfmt import Dummy, InorderBlock, ReorderedLoad
from ..sim.machine import RunResult
from .costmodel import ReplayCounts, ReplayTime, estimate_replay_time
from .interpreter import ThreadContext
from .patcher import PatchedWrite, ReplayInterval, group_intervals, patch_intervals

__all__ = ["ReplayResult", "Replayer", "replay_recording"]


@dataclass
class ReplayResult:
    """Outcome of a verified deterministic replay."""

    variant: str
    counts: ReplayCounts
    time: ReplayTime
    final_memory: dict[int, int]
    final_regs: list[list[int]]
    verified: bool

    def normalized_to_recording(self, recording_cycles: int) -> dict[str, float]:
        return self.time.normalized_to(recording_cycles)


class Replayer:
    """Replays one recorder variant's log against the original program."""

    def __init__(self, program: Program, per_core_entries: list[list],
                 *, cisn_bits: int = 16, variant: str = "default"):
        if len(per_core_entries) != program.num_threads:
            raise LogFormatError(
                f"log has {len(per_core_entries)} cores, program has "
                f"{program.num_threads} threads")
        self.program = program
        self.variant = variant
        intervals: list[ReplayInterval] = []
        for core_id, entries in enumerate(per_core_entries):
            per_core = group_intervals(core_id, list(entries),
                                       cisn_bits=cisn_bits)
            patch_intervals(per_core)
            intervals.extend(per_core)
        intervals.sort(key=ReplayInterval.sort_key)
        self.intervals = intervals

    def replay(self) -> tuple[dict[int, int], list[ThreadContext], ReplayCounts]:
        """Run the replay; returns (memory, contexts, counts)."""
        memory: dict[int, int] = {addr: value & MASK64 for addr, value
                                  in self.program.initial_memory.items()}
        contexts = [ThreadContext(core_id, self.program.threads[core_id])
                    for core_id in range(self.program.num_threads)]
        counts = ReplayCounts()
        for interval in self.intervals:
            # In the real system the OS waits here for all predecessor
            # intervals; sequential replay makes that wait implicit.
            counts.intervals += 1
            context = contexts[interval.core_id]
            for entry in interval.entries:
                if isinstance(entry, InorderBlock):
                    for _ in range(entry.size):
                        context.step(memory)
                    counts.instructions += entry.size
                    counts.inorder_blocks += 1
                elif isinstance(entry, ReorderedLoad):
                    context.inject_load_value(entry.value)
                    counts.injected_loads += 1
                elif isinstance(entry, Dummy):
                    context.skip_store()
                    counts.dummies += 1
                elif isinstance(entry, PatchedWrite):
                    memory[entry.addr] = entry.value & MASK64
                    counts.patched_writes += 1
                else:
                    raise LogFormatError(
                        f"unpatched or unknown entry {entry!r} during replay")
        return memory, contexts, counts


def replay_recording(result: RunResult, variant: str = "default", *,
                     verify: bool = True,
                     verify_load_trace: bool = True) -> ReplayResult:
    """Replay a :class:`~repro.sim.machine.RunResult` variant and verify it.

    ``verify`` checks final memory and final architectural registers against
    the recorded execution.  ``verify_load_trace`` additionally compares
    every loaded value when the run captured a load trace.
    """
    outputs = result.recordings[variant]
    replayer = Replayer(result.program,
                        [output.entries for output in outputs],
                        cisn_bits=outputs[0].config.cisn_bits,
                        variant=variant)
    memory, contexts, counts = replayer.replay()

    if verify:
        _verify_memory(memory, result.final_memory, variant)
        _verify_registers(contexts, result, variant)
        if verify_load_trace and result.load_trace is not None:
            _verify_load_trace(contexts, result, variant)

    total_instructions = result.total_instructions
    recorded_cpi = (result.cycles * len(result.cores) / total_instructions
                    if total_instructions else 1.0)
    time = estimate_replay_time(counts, result.config.replay_cost,
                                recorded_cpi=recorded_cpi)
    return ReplayResult(
        variant=variant,
        counts=counts,
        time=time,
        final_memory={addr: value for addr, value in memory.items() if value},
        final_regs=[list(context.regs) for context in contexts],
        verified=verify,
    )


def _verify_memory(replayed: dict[int, int], recorded: dict[int, int],
                   variant: str) -> None:
    replayed_nz = {addr: value for addr, value in replayed.items() if value}
    if replayed_nz == recorded:
        return
    for addr in sorted(set(replayed_nz) | set(recorded)):
        got = replayed_nz.get(addr, 0)
        want = recorded.get(addr, 0)
        if got != want:
            raise ReplayDivergenceError(
                f"[{variant}] memory diverged at {addr:#x}: "
                f"replayed {got:#x}, recorded {want:#x}")


def _verify_registers(contexts: list[ThreadContext], result: RunResult,
                      variant: str) -> None:
    for context, core in zip(contexts, result.cores):
        if context.instructions_executed != core.instructions:
            raise ReplayDivergenceError(
                f"[{variant}] core {core.core_id}: replayed "
                f"{context.instructions_executed} instructions, recorded "
                f"{core.instructions}")
        if context.regs != core.final_regs:
            diffs = [f"r{index}: replayed {got:#x} recorded {want:#x}"
                     for index, (got, want)
                     in enumerate(zip(context.regs, core.final_regs))
                     if got != want]
            raise ReplayDivergenceError(
                f"[{variant}] core {core.core_id} registers diverged: "
                + "; ".join(diffs))


def _verify_load_trace(contexts: list[ThreadContext], result: RunResult,
                       variant: str) -> None:
    for context, recorded in zip(contexts, result.load_trace):
        recorded_values = [value for _seq, _addr, value in
                           sorted(recorded, key=lambda item: item[0])]
        if context.load_values != recorded_values:
            for index, (got, want) in enumerate(
                    zip(context.load_values, recorded_values)):
                if got != want:
                    raise ReplayDivergenceError(
                        f"[{variant}] core {context.core_id}: load #{index} "
                        f"replayed {got:#x}, recorded {want:#x}")
            raise ReplayDivergenceError(
                f"[{variant}] core {context.core_id}: load count mismatch "
                f"({len(context.load_values)} vs {len(recorded_values)})")
