"""Sequential deterministic replayer with verification (Section 3.5).

The replayer consumes a recording (one recorder variant's per-core interval
logs), patches reordered stores, orders all intervals by their QuickRec
timestamps, and re-executes the program: InorderBlocks run natively on the
in-order interpreter, ReorderedLoads inject logged values, Dummies skip
patched stores, and PatchedWrites apply relocated memory updates.

Unlike the paper — which asserts determinism — this replayer *verifies* it:
final memory, final architectural registers, and (when a load trace was
captured) every loaded value are compared against the recorded execution,
raising :class:`~repro.common.errors.ReplayDivergenceError` on the first
mismatch.  The property-based test-suite leans on this heavily.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import LogFormatError
from ..isa.instructions import MASK64
from ..isa.program import Program
from ..obs.events import CheckpointEvent, DivergenceEvent, ReplayStepEvent
from ..obs.forensics import build_report, raise_divergence
from ..obs.tracer import Tracer
from ..recorder.logfmt import Dummy, InorderBlock, ReorderedLoad
from ..sim.machine import RunResult
from .costmodel import ReplayCounts, ReplayTime, estimate_replay_time
from .interpreter import ThreadContext
from .patcher import PatchedWrite, ReplayInterval, group_intervals, patch_intervals

__all__ = ["ReplayResult", "ReplayState", "Replayer", "replay_recording"]


class _WriterTrackingMemory(dict):
    """Replay memory that attributes every write to (core, chunk).

    The replay loop sets ``current`` to the interval being executed; every
    ``memory[addr] = value`` — native InorderBlock stores, RMWs and
    PatchedWrites alike — then lands in ``writers``, giving the forensics
    reporter a last-writer map at zero structural cost to the interpreter.
    """

    __slots__ = ("current", "writers")

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.current: tuple[int, int] | None = None  # (core_id, cisn)
        self.writers: dict[int, tuple[int, int]] = {}

    def __setitem__(self, addr, value):
        if self.current is not None:
            self.writers[addr] = self.current
        super().__setitem__(addr, value)


@dataclass
class ReplayState:
    """Mid-replay machine state: resumable, checkpointable.

    ``position`` counts the intervals already committed in the QuickRec
    total order (an index into ``Replayer.intervals``); ``cisn_watermarks``
    holds, per core, the CISN the core will commit next.  A state captured
    after interval *p-1* and run forward is byte-identical to straight-line
    replay — the differential checkpoint suite proves it.
    """

    memory: "_WriterTrackingMemory"
    contexts: list[ThreadContext]
    counts: ReplayCounts
    position: int = 0
    cisn_watermarks: list[int] = field(default_factory=list)


@dataclass
class ReplayResult:
    """Outcome of a verified deterministic replay."""

    variant: str
    counts: ReplayCounts
    time: ReplayTime
    final_memory: dict[int, int]
    final_regs: list[list[int]]
    verified: bool

    def normalized_to_recording(self, recording_cycles: int) -> dict[str, float]:
        return self.time.normalized_to(recording_cycles)


class Replayer:
    """Replays one recorder variant's log against the original program."""

    def __init__(self, program: Program, per_core_entries: list[list],
                 *, cisn_bits: int = 16, variant: str = "default",
                 tracer: Tracer | None = None):
        if len(per_core_entries) != program.num_threads:
            raise LogFormatError(
                f"log has {len(per_core_entries)} cores, program has "
                f"{program.num_threads} threads")
        self.program = program
        self.variant = variant
        self.tracer = tracer
        intervals: list[ReplayInterval] = []
        # (core_id, cisn) -> recording cycles the chunk spans, for forensics.
        self._bounds: dict[tuple[int, int], tuple[int, int]] = {}
        for core_id, entries in enumerate(per_core_entries):
            per_core = group_intervals(core_id, list(entries),
                                       cisn_bits=cisn_bits)
            previous_end = 0
            for interval in per_core:
                self._bounds[(core_id, interval.cisn)] = (previous_end,
                                                          interval.timestamp)
                previous_end = interval.timestamp
            patch_intervals(per_core)
            intervals.extend(per_core)
        intervals.sort(key=ReplayInterval.sort_key)
        self.intervals = intervals
        # Global replay position of each (core, cisn) chunk.
        self._index: dict[tuple[int, int], int] = {
            (interval.core_id, interval.cisn): position
            for position, interval in enumerate(intervals)}
        # Optional introspection attachments (duck-typed to avoid import
        # cycles): a CheckpointStore with ``nearest(position)`` and an HB
        # graph with ``has_node``/``slice`` (see repro.obs.inspect /
        # repro.obs.causality).  When present, divergence reports name the
        # nearest checkpoint and the culprit chunk's causal cone.
        self.checkpoint_store = None
        self.hb_graph = None

    def interval_bounds(self, core_id: int, cisn: int) -> tuple[int, int] | None:
        """Recording cycles (start, end) spanned by a core's chunk."""
        return self._bounds.get((core_id, cisn))

    def index_of(self, core_id: int, cisn: int) -> int | None:
        """Global replay position of one chunk (None if not in the log)."""
        return self._index.get((core_id, cisn))

    def intervals_per_core(self) -> list[int]:
        """Number of committed intervals per core."""
        counts = [0] * self.program.num_threads
        for interval in self.intervals:
            counts[interval.core_id] = max(counts[interval.core_id],
                                           interval.cisn + 1)
        return counts

    def quickrec_order(self) -> list[tuple[int, int]]:
        """The (core, cisn) chunks in the QuickRec total replay order."""
        return [(interval.core_id, interval.cisn)
                for interval in self.intervals]

    def initial_state(self) -> ReplayState:
        """Fresh pre-replay state (program entry, initial memory image)."""
        memory = _WriterTrackingMemory(
            {addr: value & MASK64 for addr, value
             in self.program.initial_memory.items()})
        contexts = [ThreadContext(core_id, self.program.threads[core_id])
                    for core_id in range(self.program.num_threads)]
        return ReplayState(memory=memory, contexts=contexts,
                           counts=ReplayCounts(),
                           position=0,
                           cisn_watermarks=[0] * self.program.num_threads)

    def run(self, state: ReplayState, *, stop: int | None = None,
            access_sink=None, on_interval_end=None) -> ReplayState:
        """Advance ``state`` through intervals ``[state.position, stop)``.

        ``access_sink`` (see :mod:`repro.obs.inspect`) observes every memory
        access: it gets ``begin_interval(position, interval)`` before each
        chunk and ``access(kind, addr, value)`` per access.
        ``on_interval_end(state, interval)`` fires after each commit (the
        checkpoint hook).  Both default to None and cost nothing then.
        """
        end = len(self.intervals) if stop is None else stop
        if not state.position <= end <= len(self.intervals):
            raise LogFormatError(
                f"replay range {state.position}..{end} outside the log's "
                f"{len(self.intervals)} intervals")
        memory, contexts, counts = state.memory, state.contexts, state.counts
        if access_sink is not None:
            for context in contexts:
                context.access_sink = access_sink.access
        try:
            for position in range(state.position, end):
                interval = self.intervals[position]
                # In the real system the OS waits here for all predecessor
                # intervals; sequential replay makes that wait implicit.
                counts.intervals += 1
                memory.current = (interval.core_id, interval.cisn)
                if access_sink is not None:
                    access_sink.begin_interval(position, interval)
                context = contexts[interval.core_id]
                instructions = injected = patched = 0
                for entry in interval.entries:
                    if isinstance(entry, InorderBlock):
                        for _ in range(entry.size):
                            context.step(memory)
                        instructions += entry.size
                        counts.instructions += entry.size
                        counts.inorder_blocks += 1
                    elif isinstance(entry, ReorderedLoad):
                        context.inject_load_value(entry.value)
                        injected += 1
                        counts.injected_loads += 1
                    elif isinstance(entry, Dummy):
                        context.skip_store()
                        counts.dummies += 1
                    elif isinstance(entry, PatchedWrite):
                        memory[entry.addr] = entry.value & MASK64
                        if access_sink is not None:
                            access_sink.access("patched-store", entry.addr,
                                               entry.value & MASK64)
                        patched += 1
                        counts.patched_writes += 1
                    else:
                        raise LogFormatError(
                            f"unpatched or unknown entry {entry!r} during "
                            f"replay")
                if self.tracer is not None:
                    self.tracer.emit(ReplayStepEvent(
                        cycle=interval.timestamp, core_id=interval.core_id,
                        variant=self.variant, cisn=interval.cisn,
                        timestamp=interval.timestamp,
                        instructions=instructions,
                        injected_loads=injected, patched_writes=patched))
                state.position = position + 1
                state.cisn_watermarks[interval.core_id] = interval.cisn + 1
                if on_interval_end is not None:
                    on_interval_end(state, interval)
        finally:
            if access_sink is not None:
                for context in contexts:
                    context.access_sink = None
            memory.current = None
        return state

    def replay(self, *, checkpoint_every: int | None = None,
               checkpoint_sink=None, access_sink=None
               ) -> tuple[dict[int, int], list[ThreadContext], ReplayCounts]:
        """Run the full replay; returns (memory, contexts, counts).

        With ``checkpoint_sink`` (a callable ``(replayer, state) ->
        checkpoint``, e.g. :meth:`repro.obs.inspect.CheckpointStore.capture`)
        a snapshot is taken before the first interval and after every
        ``checkpoint_every`` committed chunks.
        """
        state = self.initial_state()
        on_interval_end = None
        if checkpoint_sink is not None:
            every = checkpoint_every or 1
            self._emit_checkpoint(checkpoint_sink(self, state), cycle=0)

            def on_interval_end(state, interval):
                if state.position % every == 0:
                    self._emit_checkpoint(checkpoint_sink(self, state),
                                          cycle=interval.timestamp)

        self.run(state, access_sink=access_sink,
                 on_interval_end=on_interval_end)
        return state.memory, state.contexts, state.counts

    def _emit_checkpoint(self, checkpoint, *, cycle: int) -> None:
        if self.tracer is not None and checkpoint is not None:
            self.tracer.emit(CheckpointEvent(
                cycle=cycle, core_id=-1, variant=self.variant,
                checkpoint_id=checkpoint.checkpoint_id,
                position=checkpoint.position))


def replay_recording(result: RunResult, variant: str = "default", *,
                     verify: bool = True,
                     verify_load_trace: bool = True,
                     tracer: Tracer | None = None,
                     checkpoint_every: int | None = None) -> ReplayResult:
    """Replay a :class:`~repro.sim.machine.RunResult` variant and verify it.

    ``verify`` checks final memory and final architectural registers against
    the recorded execution.  ``verify_load_trace`` additionally compares
    every loaded value when the run captured a load trace.  On a mismatch
    the raised :class:`ReplayDivergenceError` carries a
    :class:`~repro.obs.forensics.DivergenceReport` (with recent history
    when ``tracer`` is given) naming the culprit core/chunk/address.

    ``checkpoint_every`` additionally captures a replay checkpoint every N
    committed chunks and builds the happens-before graph, so a divergence
    report also names the nearest checkpoint, the culprit chunk's causal
    cone, and a ready-to-run ``repro.tools inspect`` command line.
    """
    outputs = result.recordings[variant]
    replayer = Replayer(result.program,
                        [output.entries for output in outputs],
                        cisn_bits=outputs[0].config.cisn_bits,
                        variant=variant, tracer=tracer)
    checkpoint_sink = None
    if checkpoint_every is not None:
        from ..obs.causality import CausalityGraph
        from ..obs.inspect import CheckpointStore
        replayer.checkpoint_store = CheckpointStore()
        replayer.hb_graph = CausalityGraph.build(
            replayer.intervals_per_core(),
            edges=result.dependence_edges.get(variant),
            order=replayer.quickrec_order())
        checkpoint_sink = replayer.checkpoint_store.capture
    memory, contexts, counts = replayer.replay(
        checkpoint_every=checkpoint_every, checkpoint_sink=checkpoint_sink)

    if verify:
        _verify_memory(memory, result.final_memory, replayer)
        _verify_registers(contexts, result, replayer)
        if verify_load_trace and result.load_trace is not None:
            _verify_load_trace(contexts, result, replayer)

    total_instructions = result.total_instructions
    recorded_cpi = (result.cycles * len(result.cores) / total_instructions
                    if total_instructions else 1.0)
    time = estimate_replay_time(counts, result.config.replay_cost,
                                recorded_cpi=recorded_cpi)
    return ReplayResult(
        variant=variant,
        counts=counts,
        time=time,
        final_memory={addr: value for addr, value in memory.items() if value},
        final_regs=[list(context.regs) for context in contexts],
        verified=verify,
    )


def _diverge(replayer: "Replayer | str", *, kind: str, detail: str,
             core_id: int | None = None, chunk: int | None = None,
             addr: int | None = None, expected: int | None = None,
             observed: int | None = None) -> None:
    """Assemble forensics and raise, mirroring the mismatch to the tracer.

    ``replayer`` may be a bare variant name (legacy call shape): the report
    then carries attribution but no interval bounds or trace history.
    """
    checkpoint = hb_slice = inspect_hint = None
    if isinstance(replayer, str):
        variant, tracer, bounds = replayer, None, None
    else:
        variant = replayer.variant
        tracer = replayer.tracer
        bounds = (replayer.interval_bounds(core_id, chunk)
                  if core_id is not None and chunk is not None else None)
        if core_id is not None and chunk is not None:
            inspect_hint = (
                f"python -m repro.tools inspect <run.json> "
                f"--variant {variant} --state-at {core_id}:{chunk} "
                f"--hb-slice {core_id}:{chunk}")
            graph = replayer.hb_graph
            if graph is not None and graph.has_node((core_id, chunk)):
                hb_slice = graph.slice((core_id, chunk))
            store = replayer.checkpoint_store
            position = replayer.index_of(core_id, chunk)
            if store is not None and position is not None:
                nearest = store.nearest(position + 1)
                if nearest is not None:
                    checkpoint = (nearest.checkpoint_id, nearest.position)
    if tracer is not None:
        tracer.emit(DivergenceEvent(
            cycle=bounds[1] if bounds else 0,
            core_id=core_id if core_id is not None else -1,
            variant=variant, kind=kind,
            addr=addr if addr is not None else -1,
            expected=expected if expected is not None else 0,
            observed=observed if observed is not None else 0))
    raise_divergence(build_report(
        variant=variant, kind=kind, detail=detail, core_id=core_id,
        chunk=chunk, addr=addr, expected=expected, observed=observed,
        interval_bounds=bounds, tracer=tracer, checkpoint=checkpoint,
        hb_slice=hb_slice, inspect_hint=inspect_hint))


def _verify_memory(replayed: dict[int, int], recorded: dict[int, int],
                   replayer: "Replayer | str") -> None:
    replayed_nz = {addr: value for addr, value in replayed.items() if value}
    if replayed_nz == recorded:
        return
    for addr in sorted(set(replayed_nz) | set(recorded)):
        got = replayed_nz.get(addr, 0)
        want = recorded.get(addr, 0)
        if got != want:
            writer = getattr(replayed, "writers", {}).get(addr)
            core_id, chunk = writer if writer is not None else (None, None)
            _diverge(replayer, kind="memory",
                     detail=f"memory diverged at {addr:#x}: "
                            f"replayed {got:#x}, recorded {want:#x}",
                     core_id=core_id, chunk=chunk, addr=addr,
                     expected=want, observed=got)


def _verify_registers(contexts: list[ThreadContext], result: RunResult,
                      replayer: "Replayer | str") -> None:
    for context, core in zip(contexts, result.cores):
        if context.instructions_executed != core.instructions:
            _diverge(replayer, kind="instruction-count",
                     detail=f"core {core.core_id}: replayed "
                            f"{context.instructions_executed} instructions, "
                            f"recorded {core.instructions}",
                     core_id=core.core_id,
                     expected=core.instructions,
                     observed=context.instructions_executed)
        if context.regs != core.final_regs:
            diffs = [f"r{index}: replayed {got:#x} recorded {want:#x}"
                     for index, (got, want)
                     in enumerate(zip(context.regs, core.final_regs))
                     if got != want]
            _diverge(replayer, kind="registers",
                     detail=f"core {core.core_id} registers diverged: "
                            + "; ".join(diffs),
                     core_id=core.core_id)


def _verify_load_trace(contexts: list[ThreadContext], result: RunResult,
                       replayer: "Replayer | str") -> None:
    for context, recorded in zip(contexts, result.load_trace):
        recorded_values = [value for _seq, _addr, value in
                           sorted(recorded, key=lambda item: item[0])]
        if context.load_values != recorded_values:
            recorded_addrs = [addr for _seq, addr, _value in
                              sorted(recorded, key=lambda item: item[0])]
            for index, (got, want) in enumerate(
                    zip(context.load_values, recorded_values)):
                if got != want:
                    _diverge(replayer, kind="load-trace",
                             detail=f"core {context.core_id}: load #{index} "
                                    f"replayed {got:#x}, recorded {want:#x}",
                             core_id=context.core_id,
                             addr=recorded_addrs[index],
                             expected=want, observed=got)
            _diverge(replayer, kind="load-trace",
                     detail=f"core {context.core_id}: load count mismatch "
                            f"({len(context.load_values)} vs "
                            f"{len(recorded_values)})",
                     core_id=context.core_id)
