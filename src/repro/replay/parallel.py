"""Parallel deterministic replay over the interval dependence DAG.

The paper's Sections 2.1 and 5.4 note that chunk-ordering schemes which
record pairwise dependences (Cyrus, Karma) admit *parallel* replay — each
processor replays its own interval stream, synchronizing only at recorded
inter-interval edges — and that small maximum interval sizes exist
precisely to expose this parallelism.

This module implements that replayer on top of the Cyrus-style edges
collected by :class:`repro.recorder.ordering.DependenceTracker`:

* builds the interval DAG (recorded conflict edges + per-core program
  order) and checks it is acyclic;
* *verifies* the DAG by executing the intervals in a topological order that
  deliberately ignores the QuickRec timestamps — if the edges missed any
  dependence, the bit-exact determinism check fails;
* schedules the DAG on one worker per core (an interval starts when its
  same-core predecessor and all edge predecessors finished; durations come
  from the Figure 13 cost model) and reports the parallel makespan and
  speedup over sequential replay.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..common.config import ReplayCostConfig
from ..common.errors import LogFormatError
from ..isa.instructions import MASK64
from ..isa.program import Program
from ..recorder.logfmt import Dummy, InorderBlock, ReorderedLoad
from ..recorder.ordering import IntervalEdge
from ..sim.machine import RunResult
from .costmodel import ReplayCounts
from .interpreter import ThreadContext
from .patcher import PatchedWrite, ReplayInterval, group_intervals, patch_intervals
from .replayer import _verify_memory, _verify_registers

__all__ = ["ParallelReplayResult", "ParallelReplayer",
           "parallel_replay_recording"]


@dataclass
class ParallelReplayResult:
    """Outcome of a verified parallel replay."""

    variant: str
    counts: ReplayCounts
    makespan_cycles: float       # parallel schedule length
    sequential_cycles: float     # sum of all interval durations
    critical_path_cycles: float  # lower bound from the DAG alone
    edges: int
    verified: bool

    @property
    def speedup(self) -> float:
        return (self.sequential_cycles / self.makespan_cycles
                if self.makespan_cycles else 0.0)

    def normalized_to_recording(self, recording_cycles: int) -> float:
        return (self.makespan_cycles / recording_cycles
                if recording_cycles else 0.0)


class ParallelReplayer:
    """DAG-ordered replayer (see module docstring)."""

    def __init__(self, program: Program, per_core_entries: list[list],
                 edges: list[IntervalEdge], cost: ReplayCostConfig, *,
                 recorded_cpi: float = 1.0, cisn_bits: int = 16,
                 variant: str = "default"):
        if len(per_core_entries) != program.num_threads:
            raise LogFormatError(
                f"log has {len(per_core_entries)} cores, program has "
                f"{program.num_threads} threads")
        self.program = program
        self.variant = variant
        self.cost = cost
        self.recorded_cpi = recorded_cpi

        self.per_core: list[list[ReplayInterval]] = []
        for core_id, entries in enumerate(per_core_entries):
            intervals = group_intervals(core_id, list(entries),
                                        cisn_bits=cisn_bits)
            patch_intervals(intervals)
            self.per_core.append(intervals)

        self.edges = [edge for edge in edges
                      if self._exists(edge.src_core, edge.src_cisn)
                      and self._exists(edge.dst_core, edge.dst_cisn)]

    def _exists(self, core: int, cisn: int) -> bool:
        return core < len(self.per_core) and cisn < len(self.per_core[core])

    # ------------------------------------------------------------- graph

    def _topological_order(self) -> list[ReplayInterval]:
        """Kahn's algorithm over conflict edges + per-core program order,
        biased *against* the recording's timestamp order (younger-core-first
        tie-breaking) so verification genuinely tests the edges."""
        preds: dict[tuple[int, int], set[tuple[int, int]]] = {}
        succs: dict[tuple[int, int], list[tuple[int, int]]] = {}

        def add_edge(src: tuple[int, int], dst: tuple[int, int]) -> None:
            if src == dst:
                return
            if dst not in preds:
                preds[dst] = set()
            if src not in preds[dst]:
                preds[dst].add(src)
                succs.setdefault(src, []).append(dst)

        nodes = [(core, interval.cisn)
                 for core, intervals in enumerate(self.per_core)
                 for interval in intervals]
        for core, intervals in enumerate(self.per_core):
            for interval in intervals[1:]:
                add_edge((core, interval.cisn - 1), (core, interval.cisn))
        for edge in self.edges:
            add_edge((edge.src_core, edge.src_cisn),
                     (edge.dst_core, edge.dst_cisn))

        indegree = {node: len(preds.get(node, ())) for node in nodes}
        ready = deque(sorted((node for node in nodes if not indegree[node]),
                             key=lambda node: (-node[0], node[1])))
        order: list[ReplayInterval] = []
        while ready:
            node = ready.popleft()
            core, cisn = node
            order.append(self.per_core[core][cisn])
            for successor in succs.get(node, ()):
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    ready.append(successor)
        if len(order) != len(nodes):
            raise LogFormatError(
                f"[{self.variant}] interval dependence graph has a cycle "
                f"({len(nodes) - len(order)} intervals unreachable)")
        return order

    # ----------------------------------------------------------- durations

    def _duration(self, interval: ReplayInterval) -> float:
        cost = self.cost
        cpi = cost.user_cpi * (self.recorded_cpi
                               if cost.relative_user_cpi else 1.0)
        cycles = float(cost.interval_dispatch_cycles)
        for entry in interval.entries:
            if isinstance(entry, InorderBlock):
                cycles += (entry.size * cpi
                           + cost.inorder_block_interrupt_cycles
                           + cost.block_flush_user_cycles)
            elif isinstance(entry, ReorderedLoad):
                cycles += cost.reordered_load_cycles
            elif isinstance(entry, Dummy):
                cycles += cost.dummy_entry_cycles
            elif isinstance(entry, PatchedWrite):
                cycles += cost.reordered_store_cycles
        return max(cycles, 1.0)

    # -------------------------------------------------------------- replay

    def replay(self):
        """Execute in topological order; returns
        (memory, contexts, counts, schedule facts)."""
        order = self._topological_order()

        memory: dict[int, int] = {addr: value & MASK64 for addr, value
                                  in self.program.initial_memory.items()}
        contexts = [ThreadContext(core_id, self.program.threads[core_id])
                    for core_id in range(self.program.num_threads)]
        counts = ReplayCounts()
        finish: dict[tuple[int, int], float] = {}
        core_free = [0.0] * self.program.num_threads
        preds_of: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for edge in self.edges:
            preds_of.setdefault((edge.dst_core, edge.dst_cisn), []).append(
                (edge.src_core, edge.src_cisn))

        sequential = 0.0
        critical = 0.0
        for interval in order:
            counts.intervals += 1
            context = contexts[interval.core_id]
            for entry in interval.entries:
                if isinstance(entry, InorderBlock):
                    for _ in range(entry.size):
                        context.step(memory)
                    counts.instructions += entry.size
                    counts.inorder_blocks += 1
                elif isinstance(entry, ReorderedLoad):
                    context.inject_load_value(entry.value)
                    counts.injected_loads += 1
                elif isinstance(entry, Dummy):
                    context.skip_store()
                    counts.dummies += 1
                elif isinstance(entry, PatchedWrite):
                    memory[entry.addr] = entry.value & MASK64
                    counts.patched_writes += 1
                else:
                    raise LogFormatError(
                        f"unpatched or unknown entry {entry!r}")
            # Schedule accounting: one replay worker per core, waits for
            # the recorded predecessors (condition variables in the paper's
            # OS module).
            node = (interval.core_id, interval.cisn)
            duration = self._duration(interval)
            start = core_free[interval.core_id]
            for predecessor in preds_of.get(node, ()):
                start = max(start, finish[predecessor])
            end = start + duration
            finish[node] = end
            core_free[interval.core_id] = end
            sequential += duration
            critical = max(critical, end)

        return memory, contexts, counts, sequential, critical


def parallel_replay_recording(result: RunResult, variant: str = "default",
                              *, verify: bool = True) -> ParallelReplayResult:
    """Parallel-replay a recorded variant (requires that the run collected
    dependence edges, i.e. the machine was built with pairwise ordering)."""
    if variant not in result.dependence_edges:
        raise LogFormatError(
            f"recording has no dependence edges for {variant!r}; run the "
            f"machine with collect_dependence_edges=True")
    outputs = result.recordings[variant]
    total_instructions = result.total_instructions
    recorded_cpi = (result.cycles * len(result.cores) / total_instructions
                    if total_instructions else 1.0)
    replayer = ParallelReplayer(
        result.program, [output.entries for output in outputs],
        result.dependence_edges[variant], result.config.replay_cost,
        recorded_cpi=recorded_cpi, cisn_bits=outputs[0].config.cisn_bits,
        variant=variant)
    memory, contexts, counts, sequential, makespan = replayer.replay()
    if verify:
        _verify_memory(memory, result.final_memory, variant)
        _verify_registers(contexts, result, variant)
    return ParallelReplayResult(
        variant=variant,
        counts=counts,
        makespan_cycles=makespan,
        sequential_cycles=sequential,
        critical_path_cycles=makespan,
        edges=len(replayer.edges),
        verified=verify,
    )
