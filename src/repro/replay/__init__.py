"""Deterministic replay: patching, interpretation, verification, cost model."""

from .costmodel import ReplayCounts, ReplayTime, estimate_replay_time
from .interpreter import ThreadContext
from .parallel import (
    ParallelReplayer,
    ParallelReplayResult,
    parallel_replay_recording,
)
from .patcher import PatchedWrite, ReplayInterval, group_intervals, patch_intervals
from .replayer import Replayer, ReplayResult, replay_recording

__all__ = [
    "ReplayCounts",
    "ReplayTime",
    "estimate_replay_time",
    "ThreadContext",
    "ParallelReplayer",
    "ParallelReplayResult",
    "parallel_replay_recording",
    "PatchedWrite",
    "ReplayInterval",
    "group_intervals",
    "patch_intervals",
    "Replayer",
    "ReplayResult",
    "replay_recording",
]
