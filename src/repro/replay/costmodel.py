"""Replay-time estimation (Section 5.4).

The paper replays sequentially: an OS module enforces the recorded total
order of intervals, programs an instruction-count interrupt per InorderBlock
(Cyrus-style minimal hardware support), emulates reordered instructions, and
lets the hardware execute in-order blocks natively.  Replay time therefore
decomposes into *user cycles* (native execution, plus pipeline-flush
penalties for end-of-block interrupts) and *OS cycles* (interval dispatch,
interrupt handling, reordered-instruction emulation).

This module converts the replayer's event counts into that accounting,
using the explicit constants of
:class:`~repro.common.config.ReplayCostConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.config import ReplayCostConfig

__all__ = ["ReplayCounts", "ReplayTime", "estimate_replay_time"]


@dataclass
class ReplayCounts:
    """Raw event counts accumulated during a replay."""

    instructions: int = 0          # natively executed (InorderBlock contents)
    injected_loads: int = 0        # ReorderedLoad entries (incl. patched RMWs)
    dummies: int = 0               # Dummy entries (patched stores)
    patched_writes: int = 0        # relocated memory updates
    inorder_blocks: int = 0
    intervals: int = 0


@dataclass
class ReplayTime:
    """User/OS cycle split, as plotted in Figure 13."""

    user_cycles: float
    os_cycles: float

    @property
    def total_cycles(self) -> float:
        return self.user_cycles + self.os_cycles

    def normalized_to(self, recording_cycles: int) -> dict[str, float]:
        """Figure 13's y-axis: replay time as a multiple of recording time."""
        if recording_cycles <= 0:
            return {"user": 0.0, "os": 0.0, "total": 0.0}
        return {
            "user": self.user_cycles / recording_cycles,
            "os": self.os_cycles / recording_cycles,
            "total": self.total_cycles / recording_cycles,
        }


def estimate_replay_time(counts: ReplayCounts,
                         cost: ReplayCostConfig,
                         recorded_cpi: float = 1.0) -> ReplayTime:
    """Apply the cost model to replay event counts.

    ``recorded_cpi`` is the recorded execution's per-core cycles per
    instruction; it scales user time when ``cost.relative_user_cpi`` is set
    (native replay executes on the same hardware as recording).
    """
    cost.validate()
    cpi = cost.user_cpi * (recorded_cpi if cost.relative_user_cpi else 1.0)
    user = (counts.instructions * cpi
            + counts.inorder_blocks * cost.block_flush_user_cycles)
    os_cycles = (counts.intervals * cost.interval_dispatch_cycles
                 + counts.inorder_blocks * cost.inorder_block_interrupt_cycles
                 + counts.injected_loads * cost.reordered_load_cycles
                 + counts.patched_writes * cost.reordered_store_cycles
                 + counts.dummies * cost.dummy_entry_cycles)
    return ReplayTime(user_cycles=user, os_cycles=os_cycles)
