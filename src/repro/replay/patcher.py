"""Log patching (Section 3.3.2) and interval grouping.

Before a log can be replayed, every ``ReorderedStore`` entry must move from
the interval where the store was *counted* to the interval where it
*performed* — ``Offset`` intervals earlier — leaving a ``Dummy`` at the
counting position so the store instruction is skipped there.  For the RMW
extension, the counting position keeps the architectural effect (the old
value goes to the destination register, exactly a ``ReorderedLoad``) while
the memory update patches backwards like a store.

The patching pass can run off-line or on the fly while the log is read; we
implement it as an explicit pass producing :class:`ReplayInterval` objects,
which also gives the test-suite a stable structure to assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import LogFormatError
from ..recorder.logfmt import (
    Dummy,
    InorderBlock,
    IntervalFrame,
    LogEntry,
    ReorderedLoad,
    ReorderedRmw,
    ReorderedStore,
)

__all__ = ["PatchedWrite", "ReplayInterval", "group_intervals", "patch_intervals"]


@dataclass(frozen=True)
class PatchedWrite:
    """A store's memory update relocated to its perform interval.

    Applied by the replayer as a raw memory write with *no* program-counter
    advance — the corresponding instruction is consumed by the ``Dummy`` (or
    ``ReorderedLoad``) left at its counting position.
    """

    addr: int
    value: int


@dataclass
class ReplayInterval:
    """One interval of one core, ready for ordering and replay."""

    core_id: int
    cisn: int
    timestamp: int
    entries: list = field(default_factory=list)

    def sort_key(self) -> tuple[int, int]:
        """QuickRec total order: global timestamp, core id as tie-break.

        The recorder guarantees dependent intervals never share a
        timestamp: an interval containing an access whose transaction
        conflict-terminated a remote interval at cycle T is stamped at
        least T+1 (the timestamp floor in ``RelaxReplayRecorder``).
        Intervals of different cores that still tie — e.g. victims of the
        same bus transaction — are mutually dependence-free, so the
        tie-break is arbitrary but must be deterministic.
        """
        return (self.timestamp, self.core_id)


def group_intervals(core_id: int, entries: list[LogEntry],
                    *, cisn_bits: int = 16) -> list[ReplayInterval]:
    """Split a core's flat entry stream into intervals at IntervalFrames.

    Frames carry the CISN modulo ``2**cisn_bits``; logged frames are
    consecutive per core (the recorder never skips a CISN it logged), which
    this function validates while unwrapping.
    """
    intervals: list[ReplayInterval] = []
    current: list[LogEntry] = []
    mask = (1 << cisn_bits) - 1
    for entry in entries:
        if isinstance(entry, IntervalFrame):
            expected = len(intervals)
            if entry.cisn & mask != expected & mask:
                raise LogFormatError(
                    f"core {core_id}: frame CISN {entry.cisn & mask} does not "
                    f"match expected interval index {expected}")
            intervals.append(ReplayInterval(core_id, expected, entry.timestamp,
                                            current))
            current = []
        else:
            current.append(entry)
    if current:
        raise LogFormatError(
            f"core {core_id}: {len(current)} trailing entries after the last "
            f"IntervalFrame (log not finalized?)")
    return intervals


def patch_intervals(intervals: list[ReplayInterval]) -> list[ReplayInterval]:
    """Apply the patching pass in place (and return the list).

    ``ReorderedStore``/``ReorderedRmw`` entries are rewritten at their
    counting position and their memory update is appended to the interval
    ``offset`` positions earlier.
    """
    for index, interval in enumerate(intervals):
        patched: list = []
        for entry in interval.entries:
            if isinstance(entry, (ReorderedStore, ReorderedRmw)):
                target = index - entry.offset
                if target < 0:
                    raise LogFormatError(
                        f"core {interval.core_id}: interval {index} entry "
                        f"{entry!r} points {entry.offset} intervals back, "
                        f"before the log begins")
                if isinstance(entry, ReorderedStore):
                    patched.append(Dummy())
                    write = PatchedWrite(entry.addr, entry.value)
                else:
                    patched.append(ReorderedLoad(entry.old_value))
                    write = PatchedWrite(entry.addr, entry.new_value)
                if target == index:
                    # Performed and counted in the same interval (offset 0):
                    # the update belongs right here, in counting order.
                    patched.append(write)
                else:
                    intervals[target].entries.append(write)
            elif isinstance(entry, (InorderBlock, ReorderedLoad, Dummy,
                                    PatchedWrite)):
                patched.append(entry)
            else:
                raise LogFormatError(f"unexpected log entry {entry!r}")
        interval.entries = patched
    return intervals
