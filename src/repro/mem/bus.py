"""Snoopy bus over a ring: serialization point of the coherence protocol.

The bus commits at most one transaction per cycle, in FIFO order, after a
small fixed arbitration delay.  A commit is atomic: every other cache snoops
(downgrading or invalidating its copy), the requester's line fills, and all
registered listeners (the per-core MRR modules and metric collectors)
observe the transaction at the same cycle.  This is what makes the machine
write-atomic.

The ring topology contributes timing only: cache-to-cache data returns pay a
per-hop latency proportional to the ring distance between owner and
requester.
"""

from __future__ import annotations

from collections import deque
from typing import Protocol

from ..common.config import MachineConfig
from .cache import L1Cache
from .coherence import BusTransaction, MesiState, SnoopEvent, TransactionKind

__all__ = ["CoherenceListener", "SnoopyRingBus"]

# Cycles between a request being enqueued and its earliest possible commit
# (request traversal + arbitration on the ring).
_ARBITRATION_DELAY = 3
# Fixed component of a cache-to-cache transfer, on top of per-hop latency.
_C2C_BASE_LATENCY = 4
# Latency of a data-less upgrade acknowledgment.
_UPGRADE_ACK_LATENCY = 2


class CoherenceListener(Protocol):
    """Observer of committed coherence traffic (the MRR's memory-side input)."""

    def on_transaction(self, event: SnoopEvent) -> None:
        """Called once per committed transaction, for every core's listener."""

    def on_dirty_eviction(self, cycle: int, core_id: int, line_addr: int) -> None:
        """Called when ``core_id`` evicts a dirty line (Section 4.3 support)."""


class SnoopyRingBus:
    """FIFO-arbitrated snoopy bus shared by all L1 caches."""

    def __init__(self, config: MachineConfig, caches: list[L1Cache]):
        self.config = config
        self.caches = caches
        self.num_cores = len(caches)
        self._queue: deque[BusTransaction] = deque()
        self._pending_by_line: dict[tuple[int, int], BusTransaction] = {}
        self._pending_counts = [0] * self.num_cores
        self._listeners: list[CoherenceListener] = []
        # Optional structured trace bus (set via MemorySystem.attach_tracer).
        self.tracer = None
        # Optional cycle-attribution profiler (repro.obs.profiler), set by
        # Machine.run; observes per-commit queueing delay.
        self.profiler = None
        # Lines resident in the shared L2 (warm after first transaction).
        self._l2_present: set[int] = set()
        # Statistics.
        self.committed = 0
        self.committed_by_kind = {kind: 0 for kind in TransactionKind}

    def add_listener(self, listener: CoherenceListener) -> None:
        self._listeners.append(listener)

    # ----------------------------------------------------------- requests

    def pending_for(self, core_id: int, line_addr: int) -> BusTransaction | None:
        """The core's queued transaction for a line, for MSHR merging."""
        return self._pending_by_line.get((core_id, line_addr))

    def pending_count(self, core_id: int) -> int:
        """Number of outstanding transactions for a core (MSHR pressure)."""
        return self._pending_counts[core_id]

    def enqueue(self, transaction: BusTransaction) -> None:
        key = (transaction.requester, transaction.line_addr)
        assert key not in self._pending_by_line, "caller must merge via pending_for"
        self._queue.append(transaction)
        self._pending_by_line[key] = transaction
        self._pending_counts[transaction.requester] += 1

    # ------------------------------------------------------------- commit

    def tick(self, cycle: int) -> bool:
        """Commit the transaction at the head of the queue, if it is due.

        Returns True when a transaction committed this cycle.
        """
        if not self._queue:
            return False
        head = self._queue[0]
        if cycle < head.enqueue_cycle + _ARBITRATION_DELAY:
            return False
        self._queue.popleft()
        del self._pending_by_line[(head.requester, head.line_addr)]
        self._pending_counts[head.requester] -= 1
        if self.profiler is not None:
            # Queueing delay beyond the fixed arbitration latency: the
            # bus-contention component of the cycle-attribution profile.
            self.profiler.note_bus_commit(
                head.kind.value,
                cycle - head.enqueue_cycle - _ARBITRATION_DELAY)
        self._commit(head, cycle)
        return True

    def _commit(self, transaction: BusTransaction, cycle: int) -> None:
        requester_cache = self.caches[transaction.requester]
        line_addr = transaction.line_addr
        kind = transaction.kind

        # An UPGRADE whose local copy was invalidated while queued must
        # fetch data like a GETM.
        if (kind is TransactionKind.UPGRADE
                and not requester_cache.lookup(line_addr).can_read):
            kind = TransactionKind.GETM

        # Snoop every other cache; note ownership for data sourcing.
        owner: int | None = None
        other_sharer = False
        is_write = kind.is_write
        for cache in self.caches:
            if cache.core_id == transaction.requester:
                continue
            state_before = cache.snoop_state(line_addr, is_write)
            if state_before is not None:
                other_sharer = True
                if state_before in (MesiState.MODIFIED, MesiState.EXCLUSIVE):
                    owner = cache.core_id

        data_ready = cycle + self._data_latency(transaction.requester, kind,
                                                line_addr, owner)

        # Fill/upgrade the requester's line.
        if kind is TransactionKind.UPGRADE:
            requester_cache.set_state(line_addr, MesiState.MODIFIED)
            requester_cache.touch(line_addr)
        else:
            if kind is TransactionKind.GETM:
                new_state = MesiState.MODIFIED
            else:
                new_state = MesiState.SHARED if other_sharer else MesiState.EXCLUSIVE
            victim = requester_cache.fill(line_addr, new_state, cycle=cycle)
            if victim is not None and victim.state is MesiState.MODIFIED:
                self._l2_present.add(victim.line_addr)
                for listener in self._listeners:
                    listener.on_dirty_eviction(cycle, transaction.requester,
                                               victim.line_addr)

        self._l2_present.add(line_addr)
        self.committed += 1
        self.committed_by_kind[transaction.kind] += 1

        # Everyone observes the committed transaction at this cycle.
        event = SnoopEvent(cycle=cycle, requester=transaction.requester,
                           line_addr=line_addr, is_write=kind.is_write)
        if self.tracer is not None:
            self.tracer.emit(event.to_trace_event(kind))
        for listener in self._listeners:
            listener.on_transaction(event)

        # Wake the memory operations waiting on this transaction.
        for waiter in transaction.waiters:
            waiter(cycle, data_ready)

    def _data_latency(self, requester: int, kind: TransactionKind,
                      line_addr: int, owner: int | None) -> int:
        if kind is TransactionKind.UPGRADE:
            return _UPGRADE_ACK_LATENCY
        if owner is not None:
            hops = self._ring_distance(owner, requester)
            return _C2C_BASE_LATENCY + hops * self.config.ring.hop_cycles
        if line_addr in self._l2_present:
            return self.config.l2.roundtrip_cycles
        return self.config.memory.roundtrip_cycles

    def _ring_distance(self, a: int, b: int) -> int:
        forward = (b - a) % self.num_cores
        return min(forward, self.num_cores - forward)

    @property
    def idle(self) -> bool:
        return not self._queue

    def next_commit_cycle(self) -> int | None:
        """Earliest cycle the head transaction can commit (fast-forwarding)."""
        if not self._queue:
            return None
        return self._queue[0].enqueue_cycle + _ARBITRATION_DELAY
