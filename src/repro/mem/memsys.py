"""Memory system facade: functional image + caches + bus + MSHRs.

The core's load/store units talk to this module.  An access either *hits*
(sufficient MESI permission in the local L1) and performs immediately at the
issue cycle, or enqueues/merges into a bus transaction and performs at that
transaction's commit cycle.  "Performs" is the access's coherence-order
point: the functional memory image is read/updated exactly then, so load
values reflect precisely the interleavings the coherence protocol allowed —
which is the ground truth the recorder must capture and the replayer must
reproduce.

The value's availability to dependent instructions is delayed by the data
return latency (L1 hit, cache-to-cache over the ring, L2, or main memory);
that delay, combined with multiple outstanding misses, is what makes the
core perform accesses out of program order.
"""

from __future__ import annotations

import enum
from typing import Callable

from ..common.config import CoherenceProtocol, MachineConfig
from ..common.errors import SimulationError
from ..isa.instructions import MASK64, RmwOp, WORD_BYTES
from ..isa.semantics import eval_rmw
from .bus import CoherenceListener, SnoopyRingBus
from .cache import L1Cache
from .coherence import BusTransaction, MesiState, TransactionKind

__all__ = ["MemOpKind", "MemOp", "MemorySystem"]


class MemOpKind(enum.Enum):
    """The three access kinds the load/store units issue."""

    LOAD = "load"
    STORE = "store"
    RMW = "rmw"


class MemOp:
    """An in-flight memory access issued to the memory system."""

    __slots__ = (
        "core_id", "kind", "byte_addr", "line_addr",
        "store_value", "rmw_op", "rmw_operand", "rmw_imm",
        "performed", "perform_cycle", "value", "value_ready_cycle",
        "on_perform",
    )

    def __init__(self, core_id: int, kind: MemOpKind, byte_addr: int, *,
                 store_value: int | None = None,
                 rmw_op: RmwOp | None = None,
                 rmw_operand: int | None = None,
                 rmw_imm: int | None = None,
                 on_perform: Callable[["MemOp"], None] | None = None):
        if byte_addr % WORD_BYTES:
            raise SimulationError(f"unaligned access to {byte_addr:#x}")
        self.core_id = core_id
        self.kind = kind
        self.byte_addr = byte_addr
        self.line_addr = -1  # assigned by the memory system at issue
        self.store_value = store_value
        self.rmw_op = rmw_op
        self.rmw_operand = rmw_operand
        self.rmw_imm = rmw_imm
        self.performed = False
        self.perform_cycle = -1
        self.value: int | None = None          # loaded / RMW old value
        self.value_ready_cycle = -1            # when dst register is ready
        self.on_perform = on_perform

    @property
    def is_write(self) -> bool:
        return self.kind in (MemOpKind.STORE, MemOpKind.RMW)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"MemOp(core={self.core_id}, {self.kind.value}, "
                f"addr={self.byte_addr:#x}, performed={self.performed})")


class MemorySystem:
    """Per-machine memory hierarchy."""

    def __init__(self, config: MachineConfig, initial_memory: dict[int, int] | None = None):
        self.config = config
        self.line_bytes = config.l1.line_bytes
        self.caches = [L1Cache(config.l1, core_id)
                       for core_id in range(config.num_cores)]
        if config.protocol is CoherenceProtocol.DIRECTORY:
            from .directory import DirectoryRingBus
            self.bus = DirectoryRingBus(config, self.caches)
        else:
            self.bus = SnoopyRingBus(config, self.caches)
        self._image: dict[int, int] = dict(initial_memory or {})
        # Statistics.
        self.loads_performed = 0
        self.stores_performed = 0
        self.rmws_performed = 0

    # --------------------------------------------------------- functional

    def read_word(self, byte_addr: int) -> int:
        return self._image.get(byte_addr, 0)

    def write_word(self, byte_addr: int, value: int) -> None:
        self._image[byte_addr] = value & MASK64

    def memory_image(self) -> dict[int, int]:
        """Snapshot of all non-zero words (determinism verification)."""
        return {addr: value for addr, value in self._image.items() if value}

    # ------------------------------------------------------------- timing

    def add_listener(self, listener: CoherenceListener) -> None:
        self.bus.add_listener(listener)

    def attach_tracer(self, tracer) -> None:
        """Thread the trace bus through the caches and the coherence bus."""
        self.bus.tracer = tracer
        for cache in self.caches:
            cache.tracer = tracer

    def line_of(self, byte_addr: int) -> int:
        return byte_addr // self.line_bytes

    def tick(self, cycle: int) -> bool:
        """Advance the bus by one cycle (commits at most one transaction).

        Returns True when a coherence transaction committed.
        """
        return self.bus.tick(cycle)

    def issue(self, op: MemOp, cycle: int) -> bool:
        """Issue an access.  Returns False if MSHRs are exhausted (retry later)."""
        op.line_addr = self.line_of(op.byte_addr)
        cache = self.caches[op.core_id]
        state = cache.lookup(op.line_addr)

        needs_write = op.is_write
        if (state.can_write if needs_write else state.can_read):
            cache.touch(op.line_addr)
            if needs_write and state is MesiState.EXCLUSIVE:
                cache.set_state(op.line_addr, MesiState.MODIFIED)
            cache.hits += 1
            self._perform(op, cycle, cycle + self.config.l1.hit_cycles)
            return True

        # Miss (or permission miss): merge into a pending transaction or
        # enqueue a new one, subject to MSHR capacity.
        pending = self.bus.pending_for(op.core_id, op.line_addr)
        if pending is not None:
            if needs_write:
                pending.escalate_to_getm()
                if pending.kind is TransactionKind.UPGRADE:
                    pass  # upgrades already request ownership
            pending.waiters.append(self._waiter(op))
            return True

        if self.bus.pending_count(op.core_id) >= self.config.l1.mshr_entries:
            return False

        cache.note_miss(cycle, op.line_addr, needs_write, state)
        if needs_write:
            kind = (TransactionKind.UPGRADE if state is MesiState.SHARED
                    else TransactionKind.GETM)
        else:
            kind = TransactionKind.GETS
        transaction = BusTransaction(requester=op.core_id, kind=kind,
                                     line_addr=op.line_addr, enqueue_cycle=cycle)
        transaction.waiters.append(self._waiter(op))
        self.bus.enqueue(transaction)
        return True

    def would_accept(self, core_id: int, line_addr: int,
                     needs_write: bool) -> bool:
        """Read-only twin of :meth:`issue`'s admission decision.

        True iff an access by ``core_id`` to ``line_addr`` would be
        admitted right now: an L1 hit with sufficient permission, a merge
        into an already-pending transaction for the line, or a free MSHR.
        Strictly side-effect free — no LRU touch, no statistics.

        The compiled kernel (:mod:`repro.sim.compiled`) consults this once
        an issue scan has seen an MSHR-full rejection, to skip building
        doomed :class:`MemOp` objects for the remaining blocked accesses;
        it must stay in lock-step with the decision tree in :meth:`issue`.
        """
        state = self.caches[core_id].lookup(line_addr)
        if (state.can_write if needs_write else state.can_read):
            return True
        if self.bus.pending_for(core_id, line_addr) is not None:
            return True
        return self.bus.pending_count(core_id) < self.config.l1.mshr_entries

    def _waiter(self, op: MemOp) -> Callable[[int, int], None]:
        def on_commit(commit_cycle: int, data_ready_cycle: int) -> None:
            self._perform(op, commit_cycle, data_ready_cycle)
        return on_commit

    def _perform(self, op: MemOp, perform_cycle: int, value_ready_cycle: int) -> None:
        if op.performed:
            raise SimulationError(f"double perform of {op!r}")
        op.performed = True
        op.perform_cycle = perform_cycle
        op.value_ready_cycle = value_ready_cycle
        if op.kind is MemOpKind.LOAD:
            op.value = self.read_word(op.byte_addr)
            self.loads_performed += 1
        elif op.kind is MemOpKind.STORE:
            if op.store_value is None:
                raise SimulationError(f"store without a value: {op!r}")
            self.write_word(op.byte_addr, op.store_value)
            self.stores_performed += 1
        else:  # RMW: atomic at the perform point
            old = self.read_word(op.byte_addr)
            new = eval_rmw(op.rmw_op, old, op.rmw_operand, op.rmw_imm)
            self.write_word(op.byte_addr, new)
            op.value = old
            self.rmws_performed += 1
        if op.on_perform is not None:
            op.on_perform(op)

    # -------------------------------------------------------- diagnostics

    def check_coherence_invariants(self) -> None:
        """Assert the single-writer/multiple-reader MESI invariant."""
        owners: dict[int, list[int]] = {}
        sharers: dict[int, list[int]] = {}
        for cache in self.caches:
            for line in cache.resident_lines():
                if line.state in (MesiState.MODIFIED, MesiState.EXCLUSIVE):
                    owners.setdefault(line.line_addr, []).append(cache.core_id)
                elif line.state is MesiState.SHARED:
                    sharers.setdefault(line.line_addr, []).append(cache.core_id)
        for line_addr, cores in owners.items():
            if len(cores) > 1:
                raise SimulationError(
                    f"line {line_addr:#x} owned (M/E) by multiple cores: {cores}")
            if line_addr in sharers:
                raise SimulationError(
                    f"line {line_addr:#x} both owned by {cores} and shared by "
                    f"{sharers[line_addr]}")
