"""Directory-based MESI coherence (Section 4.3 support).

RelaxReplay's event-tracking hardware is protocol-agnostic; the paper's
Section 4.3 explains what changes when the machine uses a directory instead
of snoopy broadcast: a core no longer observes *all* coherence traffic —
only the transactions the directory forwards to it (because it owns or
shares the line) — and once a dirty line leaves a cache, that cache loses
its ability to observe conflicting transactions on it.  The paper's fix is
a conservative Snoop Table increment on dirty evictions.  Section 5.5
further predicts that directory coherence lowers the growth of reordered
fractions and log rates with core count, because each core sees far less
traffic (fewer Snoop Table and signature false positives).

This module models a ring-based MESI directory with those observable
properties:

* a per-line directory entry (owner + sharer set) at a home node
  (``line % num_cores``); the commit is still a single atomic serialization
  point per cycle, so write atomicity is preserved;
* committed transactions are delivered **only** to the cores the directory
  involves (owner and sharers), not broadcast;
* silent shared-line evictions leave stale sharer bits (such cores keep
  receiving — harmless — invalidations, exactly like real sparse
  directories); owned-line (M/E) evictions update the directory and are
  reported to the evicting core's recorder, which must then both bump its
  Snoop Table (Section 4.3) and conservatively close its interval if the
  line is in its current signatures (the directory will not forward future
  transactions on that line to us, so unrecorded conflicts could otherwise
  slip by).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.config import MachineConfig
from .bus import SnoopyRingBus, _C2C_BASE_LATENCY, _UPGRADE_ACK_LATENCY
from .cache import L1Cache
from .coherence import BusTransaction, MesiState, SnoopEvent, TransactionKind

__all__ = ["DirectoryEntry", "DirectoryRingBus"]

# Latency of the requester->home hop processing (lookup etc.).
_DIRECTORY_LOOKUP_LATENCY = 2
# Extra latency when the directory must invalidate sharers before granting M.
_INVALIDATION_LATENCY = 2


@dataclass
class DirectoryEntry:
    """Sharer tracking for one line at its home node."""

    owner: int | None = None
    sharers: set[int] = field(default_factory=set)

    def involved_cores(self) -> set[int]:
        cores = set(self.sharers)
        if self.owner is not None:
            cores.add(self.owner)
        return cores


class DirectoryRingBus(SnoopyRingBus):
    """Directory protocol sharing the snoopy bus's serialization machinery.

    Only `_commit` differs: state changes and notifications are driven by
    the directory entry instead of broadcast snooping.
    """

    def __init__(self, config: MachineConfig, caches: list[L1Cache]):
        super().__init__(config, caches)
        self._directory: dict[int, DirectoryEntry] = {}

    def entry(self, line_addr: int) -> DirectoryEntry:
        entry = self._directory.get(line_addr)
        if entry is None:
            entry = self._directory[line_addr] = DirectoryEntry()
        return entry

    def home_of(self, line_addr: int) -> int:
        return line_addr % self.num_cores

    # ------------------------------------------------------------- commit

    def _commit(self, transaction: BusTransaction, cycle: int) -> None:
        requester = transaction.requester
        requester_cache = self.caches[requester]
        line_addr = transaction.line_addr
        kind = transaction.kind
        entry = self.entry(line_addr)

        if (kind is TransactionKind.UPGRADE
                and not requester_cache.lookup(line_addr).can_read):
            kind = TransactionKind.GETM

        # The cores the directory involves in this transaction.  Stale
        # sharer bits (from silent S evictions) are notified too — their
        # caches simply no longer hold the line.
        notified = entry.involved_cores() - {requester}
        owner = entry.owner if entry.owner != requester else None
        # Latency must reflect the pre-snoop state (who can supply data).
        owner_supplies = (owner is not None
                          and self.caches[owner].lookup(line_addr).can_read)
        data_ready = cycle + self._directory_latency(
            requester, kind, line_addr, owner if owner_supplies else None,
            bool(notified))

        for core_id in sorted(notified):
            self.caches[core_id].snoop(line_addr, kind.is_write)

        # Update the directory and the requester's cache.
        if kind is TransactionKind.UPGRADE:
            requester_cache.set_state(line_addr, MesiState.MODIFIED)
            requester_cache.touch(line_addr)
            entry.owner = requester
            entry.sharers.clear()
        else:
            if kind is TransactionKind.GETM:
                new_state = MesiState.MODIFIED
                entry.owner = requester
                entry.sharers.clear()
            else:
                other_holder = bool(notified)
                new_state = (MesiState.SHARED if other_holder
                             else MesiState.EXCLUSIVE)
                if entry.owner is not None:
                    # Owner downgraded to sharer by the snoop above.
                    entry.sharers.add(entry.owner)
                    entry.owner = None
                if new_state is MesiState.EXCLUSIVE:
                    entry.owner = requester
                else:
                    entry.sharers.add(requester)
            victim = requester_cache.fill(line_addr, new_state, cycle=cycle)
            if victim is not None:
                self._release_ownership(cycle, requester, victim)

        self._l2_present.add(line_addr)
        self.committed += 1
        self.committed_by_kind[transaction.kind] += 1

        # Only involved cores observe the transaction (the crucial
        # difference from snoopy broadcast, Sections 4.3 / 5.5).  The
        # requester always hears its own commit: its recorder uses it to
        # floor interval timestamps above conflict cuts it caused.
        event = SnoopEvent(cycle=cycle, requester=requester,
                           line_addr=line_addr, is_write=kind.is_write)
        if self.tracer is not None:
            self.tracer.emit(event.to_trace_event(kind))
        for listener in self._listeners:
            core_id = getattr(listener, "core_id", None)
            if core_id is None or core_id == requester or core_id in notified:
                listener.on_transaction(event)

        for waiter in transaction.waiters:
            waiter(cycle, data_ready)

    def _release_ownership(self, cycle: int, core_id: int, victim) -> None:
        """An owned (M/E) line left a cache: writeback/ownership release."""
        entry = self.entry(victim.line_addr)
        if entry.owner == core_id:
            entry.owner = None
        entry.sharers.discard(core_id)
        self._l2_present.add(victim.line_addr)
        for listener in self._listeners:
            listener.on_dirty_eviction(cycle, core_id, victim.line_addr)

    def _directory_latency(self, requester: int, kind: TransactionKind,
                           line_addr: int, owner: int | None,
                           had_holders: bool) -> int:
        home_hops = self._ring_distance(requester, self.home_of(line_addr))
        base = home_hops * self.config.ring.hop_cycles \
            + _DIRECTORY_LOOKUP_LATENCY
        if kind is TransactionKind.UPGRADE:
            return base + _UPGRADE_ACK_LATENCY
        if owner is not None:
            forward = self._ring_distance(self.home_of(line_addr), owner)
            back = self._ring_distance(owner, requester)
            return base + _C2C_BASE_LATENCY \
                + (forward + back) * self.config.ring.hop_cycles
        invalidation = _INVALIDATION_LATENCY if (had_holders
                                                 and kind.is_write) else 0
        if line_addr in self._l2_present:
            return base + self.config.l2.roundtrip_cycles + invalidation
        return base + self.config.memory.roundtrip_cycles + invalidation
