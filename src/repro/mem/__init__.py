"""Memory substrate: MESI snoopy coherence over a ring, L1s, functional image."""

from .bus import CoherenceListener, SnoopyRingBus
from .cache import CacheLine, L1Cache
from .coherence import BusTransaction, MesiState, SnoopEvent, TransactionKind
from .directory import DirectoryEntry, DirectoryRingBus
from .memsys import MemOp, MemOpKind, MemorySystem

__all__ = [
    "CoherenceListener",
    "SnoopyRingBus",
    "CacheLine",
    "L1Cache",
    "BusTransaction",
    "DirectoryEntry",
    "DirectoryRingBus",
    "MesiState",
    "SnoopEvent",
    "TransactionKind",
    "MemOp",
    "MemOpKind",
    "MemorySystem",
]
