"""MESI coherence protocol types.

The simulated machine uses a MESI snoopy protocol over a ring, as in the
paper's Table 1.  Transactions are serialized by the bus (one commit per
cycle), and a committing transaction's effects — state downgrades in every
other cache and the requester's fill — are applied atomically at the commit
cycle.  That construction gives *write atomicity* (a write becomes visible to
every processor at a single instant, and writes to a line are serialized),
which is the only property of the memory subsystem RelaxReplay's
Observation 1 requires.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["MesiState", "TransactionKind", "BusTransaction", "SnoopEvent"]


class MesiState(enum.Enum):
    """Per-line cache state."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def can_read(self) -> bool:
        return self is not MesiState.INVALID

    @property
    def can_write(self) -> bool:
        return self in (MesiState.MODIFIED, MesiState.EXCLUSIVE)


class TransactionKind(enum.Enum):
    """Bus transaction kinds.

    ``GETS`` — read request (fill in S, or E if no other sharer).
    ``GETM`` — read-for-ownership (fill in M, invalidate others).
    ``UPGRADE`` — S->M permission request; behaves as GETM if the requester
    lost its copy while the request was queued.
    """

    GETS = "GetS"
    GETM = "GetM"
    UPGRADE = "Upg"

    @property
    def is_write(self) -> bool:
        return self in (TransactionKind.GETM, TransactionKind.UPGRADE)


@dataclass(slots=True)
class BusTransaction:
    """A queued coherence request.

    ``waiters`` are callbacks ``(commit_cycle, data_ready_cycle) -> None``
    invoked when the transaction commits; MSHR merging appends additional
    waiters to an already-queued transaction.  ``kind`` may be escalated
    (GETS -> GETM) while the transaction is still queued, which models MSHR
    read/write merging.
    """

    requester: int
    kind: TransactionKind
    line_addr: int
    enqueue_cycle: int
    waiters: list[Callable[[int, int], None]] = field(default_factory=list)

    def escalate_to_getm(self) -> None:
        """Upgrade a queued read request to a read-for-ownership."""
        if self.kind is TransactionKind.GETS:
            self.kind = TransactionKind.GETM


@dataclass(frozen=True, slots=True)
class SnoopEvent:
    """A committed transaction as observed by a (non-requesting) processor.

    This is the "memory system signal" input to the MRR module in the
    paper's Figure 6(a): the Snoop Table and the interval signatures consume
    exactly this stream.
    """

    cycle: int
    requester: int
    line_addr: int
    is_write: bool

    def to_trace_event(self, kind: "TransactionKind"):
        """Bridge to the observability bus: the same committed transaction
        as a :class:`~repro.obs.events.CoherenceEvent` on the bus track
        (``kind`` is the committed transaction kind, which the snoop-facing
        record deliberately elides down to ``is_write``)."""
        from ..obs.events import BUS_TRACK, CoherenceEvent
        return CoherenceEvent(cycle=self.cycle, core_id=BUS_TRACK,
                              requester=self.requester, kind=kind.value,
                              line_addr=self.line_addr,
                              is_write=self.is_write)
