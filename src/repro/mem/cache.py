"""Set-associative L1 cache model (tags + MESI state + LRU only).

Data is *not* stored in the cache: the machine keeps a single functional
memory image that is updated at the instant an access performs (its
coherence-order point), which is observationally equivalent under write
atomicity and keeps the model simple and fast.  The cache tracks what a real
L1 tracks for coherence purposes: which lines are present, in what MESI
state, and which victim an allocation replaces.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.config import L1Config
from ..common.errors import SimulationError
from ..obs.events import CacheEvictEvent, CacheMissEvent
from .coherence import MesiState

__all__ = ["CacheLine", "L1Cache"]


@dataclass(slots=True)
class CacheLine:
    """One resident tag (slotted: one instance per resident line, churned on
    every fill/eviction of every cache)."""

    line_addr: int
    state: MesiState
    last_use: int = 0


class L1Cache:
    """Private per-core L1 with LRU replacement.

    ``line_addr`` everywhere is the line-aligned *line index* space used by
    the memory system (byte address divided by the line size).
    """

    def __init__(self, config: L1Config, core_id: int):
        self.config = config
        self.core_id = core_id
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        # set index -> {line_addr: CacheLine}
        self._sets: list[dict[int, CacheLine]] = [dict() for _ in range(self.num_sets)]
        self._use_clock = 0
        # Optional structured trace bus (set by the machine when enabled).
        self.tracer = None
        # Statistics.
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

    def _set_index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    def lookup(self, line_addr: int) -> MesiState:
        """Current MESI state of a line (INVALID if absent)."""
        # Set index inlined (== _set_index): this and touch/snoop are the
        # hottest methods in the simulator's memory path.
        line = self._sets[line_addr % self.num_sets].get(line_addr)
        return line.state if line else MesiState.INVALID

    def touch(self, line_addr: int) -> None:
        """Mark a line most-recently-used."""
        line = self._sets[line_addr % self.num_sets].get(line_addr)
        if line:
            self._use_clock += 1
            line.last_use = self._use_clock

    def set_state(self, line_addr: int, state: MesiState) -> None:
        """Change the state of a *resident* line; INVALID removes it."""
        entries = self._sets[self._set_index(line_addr)]
        if state is MesiState.INVALID:
            entries.pop(line_addr, None)
            return
        line = entries.get(line_addr)
        if line is None:
            raise SimulationError(
                f"core {self.core_id}: set_state on non-resident line {line_addr:#x}")
        line.state = state

    def note_miss(self, cycle: int, line_addr: int, is_write: bool,
                  state: MesiState) -> None:
        """Account an L1 miss (or permission miss) at ``cycle``."""
        self.misses += 1
        if self.tracer is not None:
            self.tracer.emit(CacheMissEvent(
                cycle=cycle, core_id=self.core_id, line_addr=line_addr,
                is_write=is_write, state=state.value))

    def fill(self, line_addr: int, state: MesiState, *,
             cycle: int = 0) -> CacheLine | None:
        """Allocate (or update) a line in ``state``.

        Returns the evicted :class:`CacheLine` when an *owned* (M or E)
        line had to be victimized — the coherence substrate must know about
        those (writeback under snoopy; ownership release at a directory).
        Shared-line evictions are silent (their data is already in the
        functional image, and a directory's stale sharer bit is harmless).
        """
        entries = self._sets[self._set_index(line_addr)]
        self._use_clock += 1
        existing = entries.get(line_addr)
        if existing is not None:
            existing.state = state
            existing.last_use = self._use_clock
            return None
        owned_victim = None
        if len(entries) >= self.assoc:
            victim_addr, victim = min(entries.items(), key=lambda kv: kv[1].last_use)
            del entries[victim_addr]
            self.evictions += 1
            if victim.state is MesiState.MODIFIED:
                self.dirty_evictions += 1
                owned_victim = victim
            elif victim.state is MesiState.EXCLUSIVE:
                owned_victim = victim
            if self.tracer is not None:
                self.tracer.emit(CacheEvictEvent(
                    cycle=cycle, core_id=self.core_id, line_addr=victim_addr,
                    dirty=victim.state is MesiState.MODIFIED))
        entries[line_addr] = CacheLine(line_addr, state, self._use_clock)
        return owned_victim

    def snoop(self, line_addr: int, is_write: bool) -> bool:
        """Apply a remote transaction's effect; returns True if we had the line.

        A remote read (GetS) downgrades M/E to S; a remote write (GetM or
        Upgrade) invalidates.  The return value tells the bus whether this
        cache could have supplied the data (owner intervention).
        """
        return self.snoop_state(line_addr, is_write) is not None

    def snoop_state(self, line_addr: int, is_write: bool) -> MesiState | None:
        """:meth:`snoop`, but returns the line's *prior* state (None when not
        resident) so the bus can detect owner intervention in one lookup."""
        entries = self._sets[line_addr % self.num_sets]
        line = entries.get(line_addr)
        if line is None:
            return None
        state = line.state
        if is_write:
            del entries[line_addr]
        elif state in (MesiState.MODIFIED, MesiState.EXCLUSIVE):
            line.state = MesiState.SHARED
        return state

    def resident_lines(self) -> list[CacheLine]:
        """All resident lines (diagnostics and invariant checks)."""
        return [line for entries in self._sets for line in entries.values()]

    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets)
